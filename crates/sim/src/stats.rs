//! Streaming statistics for replicated simulation runs.
//!
//! The paper reports averages over 50 runs; this module provides the
//! aggregation: mean, sample standard deviation, and a normal-theory 95%
//! confidence half-width (adequate at 50 replications) — plus the
//! [`LatencyHistogram`] the streaming serving engine records per-event
//! latencies into (log-bucketed, bounded memory, conservative quantile
//! upper bounds — what the `stream` bench gates its SLO on).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator; 0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Normal-theory 95% confidence half-width (`1.96 * s / sqrt(n)`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Freezes into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95: self.ci95_half_width(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

/// Frozen summary of a replicated measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95% confidence half-width.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice in one call.
    pub fn of(values: &[f64]) -> Summary {
        let mut acc = Accumulator::new();
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }
}

/// Values below this are binned exactly (one bucket per nanosecond).
const EXACT_NS: u64 = 64;
/// Sub-buckets per octave above [`EXACT_NS`] (12.5% worst-case
/// resolution).
const SUB_BITS: u32 = 3;
/// Smallest exponent using sub-bucketed octaves (`EXACT_NS = 2^6`).
const FIRST_EXP: u32 = 6;
/// 64 exact buckets + 8 sub-buckets for each of the 58 octaves of a u64.
const BUCKETS: usize = EXACT_NS as usize + ((64 - FIRST_EXP as usize) << SUB_BITS as usize);

/// Fixed-memory histogram of event latencies with ~12.5% worst-case
/// bucket resolution.
///
/// Latencies are recorded in nanoseconds into log-spaced buckets (exact
/// below 64 ns, eight sub-buckets per power of two above), so a
/// serving-loop histogram costs a few KiB regardless of event volume.
/// [`LatencyHistogram::quantile_upper_ns`] reports the *upper bound* of
/// the quantile's bucket — conservative in the direction a latency gate
/// cares about: if the reported p99 passes the SLO, the true p99 does
/// too.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Bucket index of a nanosecond value.
fn bucket_of(ns: u64) -> usize {
    if ns < EXACT_NS {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros();
    let sub = ((ns >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    EXACT_NS as usize + (((exp - FIRST_EXP) as usize) << SUB_BITS as usize) + sub
}

/// Inclusive upper bound of a bucket, in nanoseconds.
fn bucket_upper(idx: usize) -> u64 {
    if idx < EXACT_NS as usize {
        return idx as u64;
    }
    let rel = idx - EXACT_NS as usize;
    let exp = FIRST_EXP + (rel >> SUB_BITS as usize) as u32;
    let sub = (rel & ((1 << SUB_BITS) - 1)) as u64;
    // Values in the bucket satisfy ns < (8 + sub + 1) << (exp - 3).
    ((1 << SUB_BITS as u64) + sub + 1)
        .saturating_mul(1 << (exp - SUB_BITS))
        .saturating_sub(1)
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded events.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Exact minimum recorded latency in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Conservative quantile: the upper bound of the bucket containing
    /// the `q`-quantile observation (`q` in [0, 1]; 0 when empty). The
    /// true quantile is at most this value and at least 1/1.125 of it.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report past the exact maximum.
                return bucket_upper(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Folds another histogram into this one — element-wise bucket
    /// addition plus exact total/sum/min/max combination, so merging is
    /// commutative and associative: per-shard histograms merged in any
    /// order equal one histogram that recorded every event. This is what
    /// lets the sharded serving engine keep latency books per shard and
    /// still report one global distribution.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// One-line rendering of the distribution (microseconds).
    pub fn render_us(&self) -> String {
        format!(
            "n={} mean={:.1}us p50<={:.1}us p99<={:.1}us max={:.1}us",
            self.total,
            self.mean_ns() / 1e3,
            self.quantile_upper_ns(0.50) as f64 / 1e3,
            self.quantile_upper_ns(0.99) as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`),
/// `None` where the kernel interface is unavailable. This is the number
/// the scale gates and the bench JSON record: it bounds what the whole
/// pipeline — substrate, world, instance, matrix, serving books — ever
/// held at once, which is the claim the blocked delay pipeline makes.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reports_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("Linux exposes VmHWM");
            // A running test binary holds at least a megabyte and less
            // than a terabyte.
            assert!(rss > 1 << 20, "peak RSS {rss} implausibly small");
            assert!(rss < 1 << 40, "peak RSS {rss} implausibly large");
        }
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // naive sample variance = sum((x-5)^2)/7 = 32/7
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_single() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many);
        assert!(many.ci95 < few.ci95);
    }

    #[test]
    fn accumulator_count_and_extremes() {
        let mut a = Accumulator::new();
        for x in [10.0, -5.0, 3.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 3);
        let s = a.summary();
        assert_eq!(s.min, -5.0);
        assert_eq!(s.max, 10.0);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_tight() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within 12.5% of it (or exact below 64 ns).
        let mut prev = 0usize;
        for ns in [
            0u64,
            1,
            5,
            63,
            64,
            65,
            100,
            1_000,
            12_345,
            1_000_000,
            250_000_000,
            u64::MAX / 2,
        ] {
            let idx = bucket_of(ns);
            assert!(idx >= prev, "buckets must be monotone in value");
            prev = idx;
            let upper = bucket_upper(idx);
            assert!(upper >= ns, "upper {upper} < value {ns}");
            if ns >= 64 {
                assert!(
                    upper as f64 <= ns as f64 * 1.125,
                    "upper {upper} too loose for {ns}"
                );
            }
        }
    }

    #[test]
    fn histogram_exact_stats() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_ns(), 250.0);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 400);
        assert_eq!(h.quantile_upper_ns(1.0), 400);
        // p50 falls in 200's bucket; the bound covers 200.
        assert!(h.quantile_upper_ns(0.5) >= 200);
        assert!(h.quantile_upper_ns(0.5) <= 225);
    }

    #[test]
    fn histogram_quantiles_bound_exact_percentiles() {
        let mut h = LatencyHistogram::new();
        let values: Vec<u64> = (1..=1000u64).map(|i| i * 977).collect();
        for &v in &values {
            h.record_ns(v);
        }
        for &(q, rank) in &[(0.5f64, 500usize), (0.9, 900), (0.99, 990)] {
            let exact = values[rank - 1];
            let bound = h.quantile_upper_ns(q);
            assert!(bound >= exact, "q={q}: bound {bound} < exact {exact}");
            assert!(
                bound as f64 <= exact as f64 * 1.125,
                "q={q}: bound {bound} too loose for {exact}"
            );
        }
    }

    #[test]
    fn histogram_merge_equals_single_recorder() {
        let values: Vec<u64> = (0..500u64).map(|i| i * i * 37 + 3).collect();
        let mut whole = LatencyHistogram::new();
        for &v in &values {
            whole.record_ns(v);
        }
        // Shard by residue, merge in an arbitrary order.
        let mut shards = vec![LatencyHistogram::new(); 3];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].record_ns(v);
        }
        let mut merged = LatencyHistogram::new();
        for shard in [&shards[2], &shards[0], &shards[1]] {
            merged.merge(shard);
        }
        assert_eq!(merged, whole);
        // Merging an empty histogram is the identity.
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, whole);
    }

    #[test]
    fn histogram_empty_and_duration_entry() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_upper_ns(0.99), 0);
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_ns(), 3_000);
        assert!(h.render_us().contains("n=1"));
    }
}
