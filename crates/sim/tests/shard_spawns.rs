//! The "no per-flush spawns" property: a [`ShardedServeEngine`]'s
//! worker team is created once at boot, and no flush, failover, or
//! recovery ever creates a thread afterwards.
//!
//! This file must stay a **single-test binary**: the observable is
//! [`dve_par::threads_spawned`], a process-global counter, and any
//! concurrently running test that touches a parallel path would corrupt
//! the deltas.

use dve_assign::StuckPolicy;
use dve_sim::{
    build_replication, ServeConfig, ServeSink, ShardedServeEngine, SimSetup, StreamEvent,
    TopologySpec,
};
use dve_topology::HierarchicalConfig;
use dve_world::{ErrorModel, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn serving_never_spawns_after_boot() {
    let setup = SimSetup {
        scenario: ScenarioConfig::from_notation("8s-40z-600c-100cp").unwrap(),
        topology: TopologySpec::Hierarchical(HierarchicalConfig {
            as_count: 5,
            routers_per_as: 8,
            ..Default::default()
        }),
        runs: 1,
        ..Default::default()
    };
    let rep = build_replication(&setup, 0);
    let shards = 4;
    let before_boot = dve_par::threads_spawned();
    let mut engine = ShardedServeEngine::new(
        rep.instance,
        &rep.world,
        rep.delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        StdRng::seed_from_u64(7),
        shards,
    )
    .expect("engine solves");
    let booted = dve_par::threads_spawned();
    assert!(
        booted - before_boot >= shards as u64,
        "boot creates the worker team (plus any build-time scoped workers)"
    );

    // Serve hard: enough churn per flush to clear the team-dispatch
    // threshold, plus a failover and a recovery. The spawn counter must
    // not move at all.
    let after_boot = dve_par::threads_spawned();
    for round in 0..20usize {
        for step in 0..30usize {
            let id = (round * 30 + step) as u64 % 500;
            engine
                .push(StreamEvent::Move {
                    id,
                    zone: (id as usize * 13 + round) % 40,
                })
                .expect("move admitted");
        }
        engine.flush_now();
        if round == 7 {
            engine.fail_server(1).expect("fail");
        }
        if round == 11 {
            engine.restore_server(1).expect("restore");
        }
    }
    assert_eq!(
        dve_par::threads_spawned(),
        after_boot,
        "a sharded engine must never spawn a thread per flush"
    );
}
