//! Width-invariance property tests for the zone-sharded serving layer:
//! a [`ShardedServeEngine`] must make **bit-identical decisions** to a
//! plain [`ServeEngine`] fed the same trace, at every shard count —
//! plain churn, and a churn+fault replay whose evacuations and
//! re-admission sweeps cross shard boundaries.

use dve_assign::StuckPolicy;
use dve_sim::{
    build_replication, run_recovery_stream, run_recovery_stream_sharded, run_stream,
    run_stream_sharded, QualityEstimator, ServeConfig, ServeEngine, ServeSink, ServeStats,
    ShardConfig, ShardedServeEngine, SimSetup, StreamEvent, TopologySpec,
};
use dve_topology::HierarchicalConfig;
use dve_world::{DynamicsBatch, ErrorModel, FaultKind, FaultSchedule, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shard widths the properties are pinned across — serial, even split,
/// uneven split, more shards than some zones' residues use.
const WIDTHS: [usize; 4] = [1, 2, 3, 8];

fn setup() -> SimSetup {
    SimSetup {
        scenario: ScenarioConfig::from_notation("8s-40z-600c-100cp").unwrap(),
        topology: TopologySpec::Hierarchical(HierarchicalConfig {
            as_count: 5,
            routers_per_as: 8,
            ..Default::default()
        }),
        runs: 1,
        ..Default::default()
    }
}

fn batch() -> DynamicsBatch {
    DynamicsBatch {
        joins: 60,
        leaves: 60,
        moves: 60,
    }
}

/// The decision-relevant counters of a [`ServeStats`]: everything but
/// the latency histograms, which record wall-clock time and are the one
/// part of a report that legitimately varies run to run.
fn decisions(stats: &ServeStats) -> [u64; 9] {
    [
        stats.events,
        stats.flushes,
        stats.zones_migrated,
        stats.full_repairs,
        stats.shed_events,
        stats.rejected_joins,
        stats.queued_joins,
        stats.failovers,
        stats.recoveries,
    ]
}

/// Plain churn: every width's sharded report equals the unsharded one —
/// same per-epoch records (pQoS is an f64, compared exactly) and same
/// lifetime counters — and the shard books account for every event.
#[test]
fn sharded_stream_is_bit_identical_across_widths() {
    let setup = setup();
    let batch = batch();
    let epochs = 4;
    let baseline = run_stream(
        &setup,
        0,
        &batch,
        epochs,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
    )
    .expect("baseline run solves");
    for shards in WIDTHS {
        let (report, books) = run_stream_sharded(
            &setup,
            0,
            &batch,
            epochs,
            StuckPolicy::BestEffort,
            ServeConfig::default(),
            shards,
        )
        .expect("sharded run solves");
        assert_eq!(
            report.records, baseline.records,
            "epoch records diverged at {shards} shards"
        );
        assert_eq!(
            decisions(&report.stats),
            decisions(&baseline.stats),
            "lifetime counters diverged at {shards} shards"
        );
        assert_eq!(books.len(), shards);
        let routed: u64 = books.iter().map(|b| b.events).sum();
        assert_eq!(
            routed, report.stats.events,
            "shard books must account for every applied event at {shards} shards"
        );
        let sampled: u64 = books.iter().map(|b| b.latency.count()).sum();
        assert_eq!(routed, sampled, "one latency sample per routed event");
    }
}

/// Churn + a fail/recover schedule: the mass evacuation and the
/// re-admission sweep move zones between servers owned by different
/// shards, and the replay still matches the unsharded engine exactly at
/// every width.
#[test]
fn sharded_recovery_is_bit_identical_across_widths() {
    let setup = setup();
    let batch = batch();
    let schedule = FaultSchedule::generate(FaultKind::FailRecover { down_for: 2 }, 8, 6, 0xd1e5);
    let baseline = run_recovery_stream(
        &setup,
        0,
        &batch,
        &schedule,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        QualityEstimator::Exact,
        0.95,
    )
    .expect("baseline recovery solves");
    assert!(
        baseline.stats.failovers >= 1 && baseline.stats.recoveries >= 1,
        "the trace must actually exercise failure and recovery"
    );
    for shards in WIDTHS {
        let (report, books) = run_recovery_stream_sharded(
            &setup,
            0,
            &batch,
            &schedule,
            StuckPolicy::BestEffort,
            ServeConfig::default(),
            QualityEstimator::Exact,
            0.95,
            shards,
        )
        .expect("sharded recovery solves");
        assert_eq!(
            report.records, baseline.records,
            "recovery records diverged at {shards} shards"
        );
        assert_eq!(report.pre_pqos.to_bits(), baseline.pre_pqos.to_bits());
        assert_eq!(report.trough_pqos.to_bits(), baseline.trough_pqos.to_bits());
        assert_eq!(report.recovered_at, baseline.recovered_at);
        assert_eq!(report.events_to_recover, baseline.events_to_recover);
        assert_eq!(report.dropped_events, baseline.dropped_events);
        assert_eq!(
            decisions(&report.stats),
            decisions(&baseline.stats),
            "recovery counters diverged at {shards} shards"
        );
        let routed: u64 = books.iter().map(|b| b.events).sum();
        assert_eq!(routed, report.stats.events);
    }
}

/// Drives a sink through a fixed churn + failure + recovery script and
/// returns the engine's full decision state.
fn drive_script<E: ServeSink>(engine: &mut E) -> (Vec<usize>, Vec<usize>, usize, [u64; 9]) {
    let initial = engine.engine().num_clients() as u64;
    // Joins land in a spread of zones; leaves retire low ids; moves
    // push survivors across the zone space. All well-formed for the
    // 8s-40z-600c scenario.
    for zone in 0..24 {
        engine
            .push(StreamEvent::Join {
                node: zone % 5,
                zone,
            })
            .expect("join admitted");
    }
    for id in 0..12u64 {
        engine.push(StreamEvent::Leave { id }).expect("leave");
    }
    for id in 100..140u64 {
        engine
            .push(StreamEvent::Move {
                id,
                zone: (id as usize * 7) % 40,
            })
            .expect("move");
    }
    engine.flush_now();
    engine.fail_server(2).expect("fail");
    for id in 200..230u64 {
        engine
            .push(StreamEvent::Move {
                id,
                zone: (id as usize * 3) % 40,
            })
            .expect("move under failure");
    }
    engine.flush_now();
    engine.restore_server(2).expect("restore");
    engine.flush_now();
    let e = engine.engine();
    assert!(e.num_clients() as u64 >= initial); // joins minus leaves
    (
        e.targets().to_vec(),
        e.contacts().to_vec(),
        e.num_clients(),
        decisions(e.stats()),
    )
}

/// The strongest form of the property: the full per-client assignment
/// (target and contact servers), not just aggregate reports, is
/// bit-identical between a plain engine and the sharded engine at every
/// width — through a script that fails and restores a server, so
/// evacuation and re-admission cross shard boundaries.
#[test]
fn sharded_assignments_equal_unsharded_per_client() {
    let setup = setup();
    let boot = |_w: usize| {
        let rep = build_replication(&setup, 0);
        (rep.instance, rep.world, rep.delays)
    };
    let (instance, world, delays) = boot(0);
    let mut plain = ServeEngine::new(
        instance,
        &world,
        delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        StdRng::seed_from_u64(0xbeef),
    )
    .expect("plain engine solves");
    let baseline = drive_script(&mut plain);
    for shards in WIDTHS {
        let (instance, world, delays) = boot(shards);
        let mut sharded = ShardedServeEngine::new(
            instance,
            &world,
            delays,
            ErrorModel::PERFECT,
            StuckPolicy::BestEffort,
            ServeConfig::default(),
            StdRng::seed_from_u64(0xbeef),
            shards,
        )
        .expect("sharded engine solves");
        let got = drive_script(&mut sharded);
        assert_eq!(
            got, baseline,
            "per-client targets/contacts diverged at {shards} shards"
        );
        // The books routed exactly the applied events, and merging the
        // shard histograms reproduces the engine's own (warm-up plus
        // steady) latency record.
        let routed: u64 = sharded.shard_stats().iter().map(|b| b.events).sum();
        assert_eq!(routed, sharded.engine().stats().events);
        let mut engine_book = sharded.engine().stats().warmup.clone();
        engine_book.merge(&sharded.engine().stats().latency);
        assert_eq!(sharded.merged_latency(), engine_book);
    }
}

/// Boots a sharded engine with an explicit [`ShardConfig`] knee on the
/// standard scenario and runs the churn+failure script.
fn drive_with_knee(setup: &SimSetup, shards: usize, shard_min: usize) -> ShardedWithBooks {
    let rep = build_replication(setup, 0);
    let mut engine = ShardedServeEngine::with_config(
        rep.instance,
        &rep.world,
        rep.delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        StdRng::seed_from_u64(0xbeef),
        shards,
        ShardConfig { shard_min },
    )
    .expect("sharded engine solves");
    let decisions = drive_script(&mut engine);
    let flush_samples: Vec<u64> = engine
        .shard_stats()
        .iter()
        .map(|b| b.flush.count())
        .collect();
    (decisions, flush_samples)
}

type ShardedWithBooks = ((Vec<usize>, Vec<usize>, usize, [u64; 9]), Vec<u64>);

/// The `ShardConfig::shard_min` knee is scheduling only: an engine that
/// takes the concurrent flush path on every flush (knee 1) and one that
/// never takes it (knee `usize::MAX`, always serial) make bit-identical
/// decisions — while the flush histograms prove the two really took
/// different paths (the concurrent engine recorded propose timings, the
/// serial one recorded none).
#[test]
fn shard_min_knee_is_decision_invariant() {
    let setup = setup();
    let (serial, serial_flushes) = drive_with_knee(&setup, 4, usize::MAX);
    assert_eq!(
        serial_flushes.iter().sum::<u64>(),
        0,
        "an infinite knee must keep every flush serial"
    );
    let (concurrent, concurrent_flushes) = drive_with_knee(&setup, 4, 1);
    assert!(
        concurrent_flushes.iter().sum::<u64>() > 0,
        "a knee of 1 must route flushes through the concurrent path"
    );
    assert_eq!(
        concurrent, serial,
        "decisions diverged across the shard_min knee"
    );
}

/// The inter-shard message seam under maximum stress: two servers fail
/// (mass evacuations land zones on servers owned by *other* shards, and
/// shed relays re-book cross-shard), churn continues while degraded,
/// then both recover (re-admission sweeps pull zones back). With the
/// knee forced to 1 every flush takes the concurrent propose/commit
/// path, and every width must reproduce the serial single-shard
/// engine's full per-client assignment exactly.
#[test]
fn concurrent_flush_matches_serial_under_cross_shard_evacuations() {
    let setup = setup();
    let boot = || {
        let rep = build_replication(&setup, 0);
        (rep.instance, rep.world, rep.delays)
    };

    fn storm<E: ServeSink>(engine: &mut E) -> (Vec<usize>, Vec<usize>, usize, [u64; 9]) {
        for zone in 0..40 {
            engine
                .push(StreamEvent::Join {
                    node: zone % 5,
                    zone,
                })
                .expect("join admitted");
        }
        engine.flush_now();
        // Server 0 owns zones of every shard residue (zones land by
        // cost, not residue), so evacuating it must cross shards.
        engine.fail_server(0).expect("fail 0");
        for id in 300..360u64 {
            engine
                .push(StreamEvent::Move {
                    id,
                    zone: (id as usize * 11) % 40,
                })
                .expect("move under failure");
        }
        engine.flush_now();
        engine.fail_server(3).expect("fail 3");
        for id in 400..440u64 {
            engine
                .push(StreamEvent::Move {
                    id,
                    zone: (id as usize * 13) % 40,
                })
                .expect("move doubly degraded");
        }
        engine.flush_now();
        engine.restore_server(0).expect("restore 0");
        engine.restore_server(3).expect("restore 3");
        for id in 500..540u64 {
            engine
                .push(StreamEvent::Move {
                    id,
                    zone: (id as usize * 17) % 40,
                })
                .expect("move recovered");
        }
        engine.flush_now();
        let e = engine.engine();
        (
            e.targets().to_vec(),
            e.contacts().to_vec(),
            e.num_clients(),
            decisions(e.stats()),
        )
    }

    let (instance, world, delays) = boot();
    let mut plain = ServeEngine::new(
        instance,
        &world,
        delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        StdRng::seed_from_u64(0xfade),
    )
    .expect("plain engine solves");
    let baseline = storm(&mut plain);
    assert!(
        baseline.3[7] >= 2 && baseline.3[8] >= 2,
        "the storm must exercise two failovers and two recoveries"
    );
    for shards in WIDTHS {
        let (instance, world, delays) = boot();
        let mut sharded = ShardedServeEngine::with_config(
            instance,
            &world,
            delays,
            ErrorModel::PERFECT,
            StuckPolicy::BestEffort,
            ServeConfig::default(),
            StdRng::seed_from_u64(0xfade),
            shards,
            ShardConfig { shard_min: 1 },
        )
        .expect("sharded engine solves");
        let got = storm(&mut sharded);
        assert_eq!(
            got, baseline,
            "concurrent flush diverged from serial at {shards} shards"
        );
    }
}
