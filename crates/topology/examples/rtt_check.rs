// quick calibration: fraction of random node pairs within 250ms when max RTT = 500ms
fn main() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut fw = vec![];
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo =
            dve_topology::hierarchical(&dve_topology::HierarchicalConfig::default(), &mut rng);
        let m = dve_topology::DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
        fw.push((
            m.fraction_within(250.0),
            m.fraction_within(200.0),
            m.mean_rtt(),
        ));
    }
    for (a, b, c) in fw {
        println!("P(<=250)={a:.3}  P(<=200)={b:.3}  mean={c:.1}");
    }
}
