//! A hand-embedded US continental PoP backbone.
//!
//! The paper also validates its simulations on "real topologies (e.g., the
//! US AT&T continental IP backbone)". That carrier map is proprietary, so
//! we embed a synthetic-but-realistic substitute: 25 US metropolitan PoPs
//! with their real latitude/longitude, linked by a hub-heavy fibre mesh
//! (national hubs: New York, Chicago, Dallas, Atlanta, Los Angeles, San
//! Francisco, Washington DC, Denver). Link weights are great-circle
//! distances, which is what dominates wide-area propagation delay. The
//! paper only needs the backbone as a source of a realistically shaped
//! delay matrix; this construction preserves that role.

use crate::graph::{Graph, Point};
use crate::hierarchical::{Topology, TopologyKind};

/// One point of presence: name, latitude, longitude, region label.
struct Pop(&'static str, f64, f64, u16);

/// Regions (used as "AS domains" by the correlation model):
/// 0 Northeast, 1 Southeast, 2 Midwest, 3 South-Central, 4 Mountain,
/// 5 West Coast.
const POPS: &[Pop] = &[
    Pop("New York", 40.7128, -74.0060, 0),
    Pop("Boston", 42.3601, -71.0589, 0),
    Pop("Philadelphia", 39.9526, -75.1652, 0),
    Pop("Washington DC", 38.9072, -77.0369, 0),
    Pop("Pittsburgh", 40.4406, -79.9959, 0),
    Pop("Atlanta", 33.7490, -84.3880, 1),
    Pop("Miami", 25.7617, -80.1918, 1),
    Pop("Charlotte", 35.2271, -80.8431, 1),
    Pop("Orlando", 28.5384, -81.3789, 1),
    Pop("Chicago", 41.8781, -87.6298, 2),
    Pop("Detroit", 42.3314, -83.0458, 2),
    Pop("Minneapolis", 44.9778, -93.2650, 2),
    Pop("St. Louis", 38.6270, -90.1994, 2),
    Pop("Cleveland", 41.4993, -81.6944, 2),
    Pop("Dallas", 32.7767, -96.7970, 3),
    Pop("Houston", 29.7604, -95.3698, 3),
    Pop("Austin", 30.2672, -97.7431, 3),
    Pop("New Orleans", 29.9511, -90.0715, 3),
    Pop("Denver", 39.7392, -104.9903, 4),
    Pop("Salt Lake City", 40.7608, -111.8910, 4),
    Pop("Phoenix", 33.4484, -112.0740, 4),
    Pop("Los Angeles", 34.0522, -118.2437, 5),
    Pop("San Francisco", 37.7749, -122.4194, 5),
    Pop("Seattle", 47.6062, -122.3321, 5),
    Pop("San Diego", 32.7157, -117.1611, 5),
];

/// Backbone adjacency by PoP index into [`POPS`]; a hub-and-spoke national
/// mesh with regional rings, shaped like published carrier maps.
const LINKS: &[(usize, usize)] = &[
    // Northeast ring + trunk to DC
    (0, 1),
    (0, 2),
    (2, 3),
    (0, 4),
    (4, 13),
    (3, 7),
    // Southeast
    (5, 7),
    (5, 8),
    (8, 6),
    (5, 6),
    (5, 17),
    // Midwest ring
    (9, 10),
    (10, 13),
    (9, 11),
    (9, 12),
    (13, 9),
    (12, 14),
    // National trunks
    (0, 9),
    (3, 5),
    (9, 18),
    (14, 15),
    (14, 16),
    (15, 17),
    (14, 5),
    (14, 20),
    (18, 19),
    (18, 14),
    (19, 22),
    (20, 21),
    (20, 24),
    (21, 22),
    (21, 24),
    (22, 23),
    (19, 23),
    (11, 23),
    (15, 6),
    (12, 18),
];

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Great-circle distance between two (lat, lon) points in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (la1, lo1, la2, lo2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// Builds the 25-PoP US backbone topology.
///
/// Node coordinates are equirectangular projections of (lon, lat) so the
/// planar helpers still work; edge weights use true great-circle distance.
pub fn us_backbone() -> Topology {
    let mut graph = Graph::new();
    let mut as_of_node = Vec::with_capacity(POPS.len());
    for Pop(_, lat, lon, region) in POPS {
        // Simple projection: x = lon, y = lat (degrees); only used for
        // plotting/debugging, distances come from haversine.
        graph.add_node(Point::new(*lon, *lat));
        as_of_node.push(*region);
    }
    for &(a, b) in LINKS {
        let Pop(_, la, lo, _) = POPS[a];
        let Pop(_, lb, lob, _) = POPS[b];
        let km = haversine_km(la, lo, lb, lob);
        graph.add_edge(a, b, km).unwrap();
    }
    debug_assert!(graph.is_connected());
    Topology {
        graph,
        as_of_node,
        kind: TopologyKind::UsBackbone,
    }
}

/// Names of the backbone PoPs, aligned with node indices.
pub fn us_backbone_names() -> Vec<&'static str> {
    POPS.iter().map(|Pop(name, ..)| *name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayMatrix;

    #[test]
    fn backbone_is_connected_25_nodes() {
        let t = us_backbone();
        assert_eq!(t.node_count(), 25);
        assert!(t.graph.is_connected());
        assert_eq!(t.kind, TopologyKind::UsBackbone);
    }

    #[test]
    fn six_regions() {
        let t = us_backbone();
        assert_eq!(t.as_count(), 6);
        assert!(!t.nodes_in_as(0).is_empty());
        assert!(!t.nodes_in_as(5).is_empty());
    }

    #[test]
    fn haversine_known_distance() {
        // New York ~ Los Angeles is about 3940 km great-circle.
        let d = haversine_km(40.7128, -74.0060, 34.0522, -118.2437);
        assert!((d - 3940.0).abs() < 60.0, "NY-LA distance {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert!(haversine_km(40.0, -74.0, 40.0, -74.0) < 1e-9);
    }

    #[test]
    fn coast_to_coast_is_the_long_pole() {
        let t = us_backbone();
        let m = DelayMatrix::from_graph(&t.graph, 100.0).unwrap();
        // Boston (1) to San Diego (24) should be close to the max RTT.
        assert!(m.rtt(1, 24) > 70.0, "rtt={}", m.rtt(1, 24));
        // New York (0) to Philadelphia (2) should be tiny.
        assert!(m.rtt(0, 2) < 10.0, "rtt={}", m.rtt(0, 2));
    }

    #[test]
    fn names_align() {
        let names = us_backbone_names();
        assert_eq!(names.len(), 25);
        assert_eq!(names[0], "New York");
        assert_eq!(names[22], "San Francisco");
    }
}
