//! Barabási–Albert preferential attachment — the AS-level model of BRITE's
//! hierarchical top-down generation used by the paper (20 AS domains).
//!
//! New nodes join one at a time and attach `m` links to existing nodes with
//! probability proportional to their current degree, producing the
//! heavy-tailed degree distributions observed in AS-level Internet maps.

use crate::graph::{Graph, Point};
use rand::Rng;

/// Generates a Barabási–Albert graph over `n` nodes placed uniformly at
/// random in a `side x side` plane, `m` links per new node.
///
/// The first `m + 1` nodes are seeded as a chain (degree >= 1 each) so that
/// preferential attachment has a well-defined distribution from the start.
/// Edge weights are Euclidean distances between endpoints, as BRITE
/// assigns propagation delay proportional to distance.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, side: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new();
    barabasi_albert_into(&mut g, n, m, Point::new(0.0, 0.0), side, rng);
    g
}

/// Appends a Barabási–Albert subgraph to `g` inside the square anchored at
/// `origin`; returns the new node ids. See [`barabasi_albert`].
pub fn barabasi_albert_into<R: Rng + ?Sized>(
    g: &mut Graph,
    n: usize,
    m: usize,
    origin: Point,
    side: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(m >= 1, "BA requires m >= 1");
    let nodes = crate::waxman::scatter_nodes(g, n, origin, side, rng);
    if nodes.len() <= 1 {
        return nodes;
    }
    let seed = (m + 1).min(nodes.len());
    for w in nodes.windows(2).take(seed - 1) {
        g.add_edge_euclidean(w[0], w[1]).unwrap();
    }
    // Repeated-node list: attachment probability proportional to degree is
    // equivalent to sampling uniformly from the multiset of edge endpoints.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * m * n);
    for w in nodes.windows(2).take(seed - 1) {
        endpoints.push(w[0]);
        endpoints.push(w[1]);
    }
    for (idx, &u) in nodes.iter().enumerate().skip(seed) {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        let want = m.min(idx);
        let mut guard = 0;
        while targets.len() < want && guard < 10_000 {
            guard += 1;
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if v != u && !targets.contains(&v) {
                targets.push(v);
            }
        }
        // Extremely unlikely fallback: fill with lowest-index nodes.
        for &v in nodes[..idx].iter() {
            if targets.len() >= want {
                break;
            }
            if !targets.contains(&v) {
                targets.push(v);
            }
        }
        for v in targets {
            if g.add_edge_euclidean(u, v).unwrap() {
                endpoints.push(u);
                endpoints.push(v);
            }
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 10, 50] {
            let g = barabasi_albert(n, 2, 100.0, &mut rng);
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected(), "n={n}");
        }
    }

    #[test]
    fn ba_edge_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 40;
        let m = 2;
        let g = barabasi_albert(n, m, 100.0, &mut rng);
        // chain of m edges + m edges per each of the n-(m+1) later nodes
        assert_eq!(g.edge_count(), m + (n - m - 1) * m);
    }

    #[test]
    fn ba_has_hub_nodes() {
        // Preferential attachment should produce at least one node whose
        // degree is several times the minimum attachment count.
        let mut rng = StdRng::seed_from_u64(1234);
        let g = barabasi_albert(200, 2, 100.0, &mut rng);
        let max_degree = (0..g.node_count()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_degree >= 10,
            "expected a hub, max degree was {max_degree}"
        );
    }

    #[test]
    fn ba_m1_is_tree() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(64, 1, 100.0, &mut rng);
        assert_eq!(g.edge_count(), 63);
        assert!(g.is_connected());
    }

    #[test]
    fn ba_into_respects_origin_box() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Graph::new();
        let ids = barabasi_albert_into(&mut g, 30, 2, Point::new(500.0, 500.0), 10.0, &mut rng);
        for id in ids {
            let p = g.coord(id);
            assert!(p.x >= 500.0 && p.x <= 510.0);
            assert!(p.y >= 500.0 && p.y <= 510.0);
        }
    }
}
