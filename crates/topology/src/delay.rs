//! Round-trip delay matrices derived from topologies.
//!
//! The paper sets "the maximum round-trip delay between any two nodes ...
//! to 500ms": shortest-path distances over the generated graph are scaled
//! so that the largest pairwise RTT equals the configured maximum. The
//! simulation then reads client–server and server–server RTTs from this
//! matrix (the latter additionally discounted by the well-provisioned
//! inter-server factor, which lives in the CAP instance, not here).

use crate::graph::Graph;
use crate::shortest_path::all_pairs;
use std::fmt;

/// Errors raised when building a [`DelayMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum DelayError {
    /// The topology is disconnected, so some pairs have no finite delay.
    Disconnected,
    /// The requested maximum RTT was not positive/finite.
    BadMaxRtt(f64),
    /// The graph has fewer than two nodes, so no pairwise delay exists.
    TooSmall(usize),
}

impl fmt::Display for DelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayError::Disconnected => write!(f, "topology is disconnected"),
            DelayError::BadMaxRtt(v) => write!(f, "max RTT {v} must be finite and > 0"),
            DelayError::TooSmall(n) => write!(f, "need >= 2 nodes, got {n}"),
        }
    }
}

impl std::error::Error for DelayError {}

/// A dense symmetric matrix of round-trip delays (milliseconds) between
/// topology nodes.
#[derive(Debug, Clone)]
pub struct DelayMatrix {
    n: usize,
    rtt: Vec<f64>, // row-major, n*n
}

impl DelayMatrix {
    /// Builds the RTT matrix from a connected graph, scaling so the maximum
    /// pairwise RTT equals `max_rtt_ms` (paper default: 500 ms).
    pub fn from_graph(graph: &Graph, max_rtt_ms: f64) -> Result<Self, DelayError> {
        if !(max_rtt_ms.is_finite() && max_rtt_ms > 0.0) {
            return Err(DelayError::BadMaxRtt(max_rtt_ms));
        }
        let n = graph.node_count();
        if n < 2 {
            return Err(DelayError::TooSmall(n));
        }
        let sp = all_pairs(graph);
        let mut max = 0.0f64;
        for (i, row) in sp.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                if !d.is_finite() {
                    return Err(DelayError::Disconnected);
                }
                if d > max {
                    max = d;
                }
            }
        }
        if max <= 0.0 {
            // All nodes coincide; treat as uniform tiny delay.
            return Ok(DelayMatrix {
                n,
                rtt: vec![0.0; n * n],
            });
        }
        let scale = max_rtt_ms / max;
        let mut rtt = vec![0.0f64; n * n];
        for (i, row) in sp.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                rtt[i * n + j] = if i == j { 0.0 } else { d * scale };
            }
        }
        Ok(DelayMatrix { n, rtt })
    }

    /// Builds a matrix directly from explicit RTT values (row-major). Used
    /// by tests and by hand-crafted scenarios.
    pub fn from_raw(n: usize, rtt: Vec<f64>) -> Result<Self, DelayError> {
        if n < 2 {
            return Err(DelayError::TooSmall(n));
        }
        assert_eq!(rtt.len(), n * n, "matrix must be n*n");
        Ok(DelayMatrix { n, rtt })
    }

    /// Number of nodes covered by the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the matrix covers no nodes (never constructed, kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Round-trip delay between nodes `a` and `b` in milliseconds.
    #[inline]
    pub fn rtt(&self, a: usize, b: usize) -> f64 {
        self.rtt[a * self.n + b]
    }

    /// Largest pairwise RTT in the matrix.
    pub fn max_rtt(&self) -> f64 {
        self.rtt.iter().copied().fold(0.0, f64::max)
    }

    /// Mean RTT over ordered pairs of distinct nodes.
    pub fn mean_rtt(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: f64 = self.rtt.iter().sum();
        sum / (self.n * (self.n - 1)) as f64
    }

    /// Fraction of ordered distinct pairs with RTT at most `bound_ms`;
    /// this is the baseline probability a *random* client–server pair
    /// meets the delay bound, which anchors the RanZ-VirC row of Table 1.
    pub fn fraction_within(&self, bound_ms: f64) -> f64 {
        if self.n < 2 {
            return 1.0;
        }
        let mut hits = 0usize;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && self.rtt(i, j) <= bound_ms {
                    hits += 1;
                }
            }
        }
        hits as f64 / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, Point};

    fn path_graph(weights: &[f64]) -> Graph {
        let mut g = Graph::new();
        for i in 0..=weights.len() {
            g.add_node(Point::new(i as f64, 0.0));
        }
        for (i, &w) in weights.iter().enumerate() {
            g.add_edge(i, i + 1, w).unwrap();
        }
        g
    }

    #[test]
    fn scales_max_to_target() {
        let g = path_graph(&[1.0, 2.0, 3.0]); // diameter 6
        let m = DelayMatrix::from_graph(&g, 500.0).unwrap();
        assert!((m.max_rtt() - 500.0).abs() < 1e-9);
        // node 0 to node 1: distance 1 of 6 -> 500/6
        assert!((m.rtt(0, 1) - 500.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn diagonal_is_zero_and_symmetric() {
        let g = path_graph(&[2.0, 5.0]);
        let m = DelayMatrix::from_graph(&g, 100.0).unwrap();
        for i in 0..3 {
            assert_eq!(m.rtt(i, i), 0.0);
            for j in 0..3 {
                assert!((m.rtt(i, j) - m.rtt(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_disconnected() {
        let g = Graph::with_nodes(3);
        assert!(matches!(
            DelayMatrix::from_graph(&g, 500.0),
            Err(DelayError::Disconnected)
        ));
    }

    #[test]
    fn rejects_bad_bounds() {
        let g = path_graph(&[1.0]);
        assert!(matches!(
            DelayMatrix::from_graph(&g, 0.0),
            Err(DelayError::BadMaxRtt(_))
        ));
        assert!(matches!(
            DelayMatrix::from_graph(&g, f64::NAN),
            Err(DelayError::BadMaxRtt(_))
        ));
        let tiny = Graph::with_nodes(1);
        assert!(matches!(
            DelayMatrix::from_graph(&tiny, 500.0),
            Err(DelayError::TooSmall(1))
        ));
    }

    #[test]
    fn fraction_within_bound() {
        let g = path_graph(&[1.0, 1.0]); // distances 1,1,2 scaled to max 500
        let m = DelayMatrix::from_graph(&g, 500.0).unwrap();
        // RTTs: (0,1)=250, (1,2)=250, (0,2)=500
        assert!((m.fraction_within(250.0) - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.fraction_within(500.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.fraction_within(100.0), 0.0);
    }

    #[test]
    fn mean_rtt_sane() {
        let g = path_graph(&[1.0, 1.0]);
        let m = DelayMatrix::from_graph(&g, 500.0).unwrap();
        let mean = m.mean_rtt();
        assert!((mean - (250.0 + 250.0 + 500.0) * 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn from_raw_roundtrip() {
        let m = DelayMatrix::from_raw(2, vec![0.0, 10.0, 10.0, 0.0]).unwrap();
        assert_eq!(m.rtt(0, 1), 10.0);
        assert_eq!(m.len(), 2);
    }
}
