//! Undirected weighted graph with planar node coordinates.
//!
//! This is the backbone data structure for every topology model in the
//! crate. Nodes are dense `usize` indices; each node carries a position in
//! the generation plane (BRITE places both AS- and router-level nodes on a
//! 2-D plane and derives link delays from Euclidean distance). Edges are
//! stored in per-node adjacency lists, mirrored for both endpoints.

use std::fmt;

/// A point in the topology generation plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An undirected weighted graph with planar coordinates per node.
///
/// Edge weights are non-negative `f64` values interpreted as propagation
/// delays (arbitrary units until scaled by
/// [`DelayMatrix`](crate::DelayMatrix)).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    coords: Vec<Point>,
    adj: Vec<Vec<(u32, f64)>>,
    edges: usize,
}

/// Errors raised by graph mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// Attempted to add a self-loop.
    SelfLoop(usize),
    /// Attempted to add an edge with a negative or non-finite weight.
    BadWeight(f64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (graph has {len} nodes)")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} rejected"),
            GraphError::BadWeight(w) => write!(f, "edge weight {w} must be finite and >= 0"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` nodes all placed at the origin.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            coords: vec![Point::new(0.0, 0.0); n],
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Adds a node at `p` and returns its index.
    pub fn add_node(&mut self, p: Point) -> usize {
        self.coords.push(p);
        self.adj.push(Vec::new());
        self.coords.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.coords.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Position of node `n`.
    pub fn coord(&self, n: usize) -> Point {
        self.coords[n]
    }

    /// Overwrites the position of node `n`.
    pub fn set_coord(&mut self, n: usize, p: Point) {
        self.coords[n] = p;
    }

    /// Euclidean distance between the coordinates of `u` and `v`.
    pub fn coord_dist(&self, u: usize, v: usize) -> f64 {
        self.coords[u].dist(&self.coords[v])
    }

    fn check_node(&self, n: usize) -> Result<(), GraphError> {
        if n >= self.coords.len() {
            Err(GraphError::NodeOutOfRange {
                node: n,
                len: self.coords.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds an undirected edge `{u, v}` with weight `w`.
    ///
    /// Parallel edges are rejected silently (the first weight wins), since
    /// none of the generators benefit from multi-edges.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::BadWeight(w));
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        self.adj[u].push((v as u32, w));
        self.adj[v].push((u as u32, w));
        self.edges += 1;
        Ok(true)
    }

    /// Adds an edge weighted by the Euclidean distance between endpoints.
    pub fn add_edge_euclidean(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        let w = self.coord_dist(u, v).max(f64::MIN_POSITIVE);
        self.add_edge(u, v, w)
    }

    /// True iff the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.adj.len() {
            return false;
        }
        self.adj[u].iter().any(|&(n, _)| n as usize == v)
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj
            .get(u)?
            .iter()
            .find(|&&(n, _)| n as usize == v)
            .map(|&(_, w)| w)
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: usize) -> usize {
        self.adj[n].len()
    }

    /// Iterates over `(neighbor, weight)` pairs of node `n`.
    pub fn neighbors(&self, n: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[n].iter().map(|&(v, w)| (v as usize, w))
    }

    /// Iterates over all undirected edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&(v, _)| u < v as usize)
                .map(move |&(v, w)| (u, v as usize, w))
        })
    }

    /// Connected-component label per node (labels are 0-based and dense).
    pub fn components(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut label = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            label[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for (v, _) in self.neighbors(u) {
                    if label[v] == usize::MAX {
                        label[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// True iff the graph is connected (vacuously true for <= 1 node).
    pub fn is_connected(&self) -> bool {
        let labels = self.components();
        labels.iter().all(|&l| l == 0)
    }

    /// Connects a disconnected graph by repeatedly adding the geometrically
    /// shortest edge between the first component and any other component.
    ///
    /// Returns the number of edges added. Generators use this to guarantee
    /// connectivity after probabilistic edge placement, as BRITE does.
    pub fn connect_components_euclidean(&mut self) -> usize {
        let mut added = 0;
        loop {
            let labels = self.components();
            let parts = labels.iter().copied().max().map_or(0, |m| m + 1);
            if parts <= 1 {
                return added;
            }
            // Closest pair straddling component 0 and any other component.
            let mut best: Option<(usize, usize, f64)> = None;
            for u in 0..self.node_count() {
                if labels[u] != 0 {
                    continue;
                }
                for v in 0..self.node_count() {
                    if labels[v] == 0 {
                        continue;
                    }
                    let d = self.coord_dist(u, v);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((u, v, d));
                    }
                }
            }
            let (u, v, d) = best.expect("disconnected graph must have a crossing pair");
            self.add_edge(u, v, d.max(f64::MIN_POSITIVE))
                .expect("connect edge must be valid");
            added += 1;
        }
    }

    /// Sum of all edge weights (useful in tests).
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(3.0, 0.0));
        let c = g.add_node(Point::new(0.0, 4.0));
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(b, c, 2.0).unwrap();
        g.add_edge(c, a, 3.0).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn euclidean_distance() {
        let g = triangle();
        assert!((g.coord_dist(1, 2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.add_edge(0, 0, 1.0), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge(0, 1, -1.0),
            Err(GraphError::BadWeight(_))
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::BadWeight(_))
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfRange { node: 5, len: 2 })
        ));
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = Graph::with_nodes(2);
        assert!(g.add_edge(0, 1, 1.0).unwrap());
        assert!(!g.add_edge(0, 1, 9.0).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let labels = g.components();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert!(!g.is_connected());
        assert!(triangle().is_connected());
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(Graph::new().is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    fn connect_components_produces_connected_graph() {
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_node(Point::new(i as f64 * 10.0, 0.0));
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g.add_edge(4, 5, 1.0).unwrap();
        let added = g.connect_components_euclidean();
        assert_eq!(added, 2);
        assert!(g.is_connected());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }
}
