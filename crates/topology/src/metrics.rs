//! Topology realism metrics.
//!
//! BRITE's value to the paper is that its graphs *look like the
//! Internet*: heavy-tailed AS degrees, local router meshes, small
//! diameters. This module computes the standard characterisation metrics
//! so tests (and users swapping in their own generators) can check that
//! a topology family has the expected shape.

use crate::graph::Graph;
use crate::shortest_path::all_pairs;

/// Summary statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Weighted diameter (max finite pairwise distance; 0 for < 2 nodes).
    pub diameter: f64,
    /// Mean finite pairwise distance.
    pub mean_distance: f64,
    /// Share of total degree held by the top 10% highest-degree nodes —
    /// a quick heavy-tail indicator (0.5+ for preferential attachment,
    /// ~0.15 for regular graphs).
    pub top_decile_degree_share: f64,
}

/// Local clustering coefficient of node `v`: the fraction of its
/// neighbour pairs that are themselves connected (0 for degree < 2).
pub fn clustering_coefficient(graph: &Graph, v: usize) -> f64 {
    let neighbors: Vec<usize> = graph.neighbors(v).map(|(u, _)| u).collect();
    let k = neighbors.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if graph.has_edge(neighbors[i], neighbors[j]) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (k * (k - 1)) as f64
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max = (0..graph.node_count())
        .map(|v| graph.degree(v))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in 0..graph.node_count() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

impl TopologyStats {
    /// Computes all metrics (runs an all-pairs shortest path, so intended
    /// for graphs up to a few thousand nodes).
    pub fn compute(graph: &Graph) -> TopologyStats {
        let n = graph.node_count();
        let mut degrees: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total_degree: usize = degrees.iter().sum();
        let top = n.div_ceil(10).min(n);
        let top_share = if total_degree == 0 {
            0.0
        } else {
            degrees[..top].iter().sum::<usize>() as f64 / total_degree as f64
        };
        let clustering = if n == 0 {
            0.0
        } else {
            (0..n)
                .map(|v| clustering_coefficient(graph, v))
                .sum::<f64>()
                / n as f64
        };
        let (diameter, mean_distance) = if n < 2 {
            (0.0, 0.0)
        } else {
            let apsp = all_pairs(graph);
            let mut max = 0.0f64;
            let mut sum = 0.0;
            let mut count = 0usize;
            for (i, row) in apsp.iter().enumerate() {
                for (j, &d) in row.iter().enumerate() {
                    if i != j && d.is_finite() {
                        sum += d;
                        count += 1;
                        max = max.max(d);
                    }
                }
            }
            (max, if count == 0 { 0.0 } else { sum / count as f64 })
        };
        TopologyStats {
            nodes: n,
            edges: graph.edge_count(),
            min_degree: degrees.last().copied().unwrap_or(0),
            mean_degree: if n == 0 {
                0.0
            } else {
                total_degree as f64 / n as f64
            },
            max_degree: degrees.first().copied().unwrap_or(0),
            clustering,
            diameter,
            mean_distance,
            top_decile_degree_share: top_share,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barabasi::barabasi_albert;
    use crate::graph::{Graph, Point};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 0, 1.0).unwrap();
        g
    }

    fn star(leaves: usize) -> Graph {
        let mut g = Graph::new();
        let hub = g.add_node(Point::new(0.0, 0.0));
        for i in 0..leaves {
            let leaf = g.add_node(Point::new(i as f64, 1.0));
            g.add_edge(hub, leaf, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(clustering_coefficient(&g, v), 1.0);
        }
        let stats = TopologyStats::compute(&g);
        assert_eq!(stats.clustering, 1.0);
        assert_eq!(stats.diameter, 1.0);
        assert_eq!(stats.min_degree, 2);
        assert_eq!(stats.max_degree, 2);
    }

    #[test]
    fn star_has_zero_clustering_and_hub_dominance() {
        let g = star(9);
        let stats = TopologyStats::compute(&g);
        assert_eq!(stats.clustering, 0.0);
        assert_eq!(stats.max_degree, 9);
        assert_eq!(stats.min_degree, 1);
        // hub holds 9 of 18 degree endpoints; top 10% of 10 nodes = 1 node.
        assert!((stats.top_decile_degree_share - 0.5).abs() < 1e-12);
        assert_eq!(stats.diameter, 2.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let hist = degree_histogram(&star(4));
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn ba_is_heavier_tailed_than_ring() {
        let mut rng = StdRng::seed_from_u64(42);
        let ba = barabasi_albert(200, 2, 100.0, &mut rng);
        let mut ring = Graph::with_nodes(200);
        for i in 0..200 {
            ring.add_edge(i, (i + 1) % 200, 1.0).unwrap();
            ring.add_edge(i, (i + 2) % 200, 1.0).unwrap();
        }
        let ba_stats = TopologyStats::compute(&ba);
        let ring_stats = TopologyStats::compute(&ring);
        assert!(
            ba_stats.top_decile_degree_share > ring_stats.top_decile_degree_share + 0.05,
            "BA {} vs ring {}",
            ba_stats.top_decile_degree_share,
            ring_stats.top_decile_degree_share
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let stats = TopologyStats::compute(&Graph::new());
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.mean_degree, 0.0);
        let stats = TopologyStats::compute(&Graph::with_nodes(1));
        assert_eq!(stats.diameter, 0.0);
    }
}
