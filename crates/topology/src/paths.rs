//! Route reconstruction: Dijkstra with predecessor tracking and explicit
//! path extraction.
//!
//! The delay matrices only need distances, but debugging a topology (and
//! the `backbone_att` example's routing displays) benefit from knowing
//! *which* routers a client→server path traverses.

use crate::graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("edge weights are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with predecessors: returns
/// `(distances, predecessor)` where `predecessor[v]` is the node before
/// `v` on a shortest path from `source` (`None` for the source and for
/// unreachable nodes).
pub fn dijkstra_with_predecessors(graph: &Graph, source: usize) -> (Vec<f64>, Vec<Option<usize>>) {
    let n = graph.node_count();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source as u32,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        let u = node as usize;
        if d > dist[u] {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                pred[v] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    node: v as u32,
                });
            }
        }
    }
    (dist, pred)
}

/// Reconstructs the node sequence from the predecessor array produced by
/// [`dijkstra_with_predecessors`]; returns `None` when `target` is
/// unreachable. The path includes both endpoints; a path from a node to
/// itself is `[node]`.
pub fn extract_path(pred: &[Option<usize>], source: usize, target: usize) -> Option<Vec<usize>> {
    if source == target {
        return Some(vec![source]);
    }
    pred[target]?;
    let mut path = vec![target];
    let mut cur = target;
    while let Some(p) = pred[cur] {
        path.push(p);
        cur = p;
        if cur == source {
            path.reverse();
            return Some(path);
        }
        if path.len() > pred.len() {
            unreachable!("predecessor chain longer than node count");
        }
    }
    None
}

/// Convenience: the shortest route between two nodes, or `None` if
/// disconnected.
pub fn shortest_route(graph: &Graph, source: usize, target: usize) -> Option<Vec<usize>> {
    let (_, pred) = dijkstra_with_predecessors(graph, source);
    extract_path(&pred, source, target)
}

/// Hop count of the shortest-delay route (edges, not nodes), or `None`
/// if disconnected.
pub fn route_hops(graph: &Graph, source: usize, target: usize) -> Option<usize> {
    shortest_route(graph, source, target).map(|p| p.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, Point};
    use crate::shortest_path::dijkstra;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3 ; 0 -1- 2 -5- 3 : shortest 0->3 is 0,1,3.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 3, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 3, 5.0).unwrap();
        g
    }

    #[test]
    fn reconstructs_shortest_route() {
        let g = diamond();
        assert_eq!(shortest_route(&g, 0, 3), Some(vec![0, 1, 3]));
        assert_eq!(route_hops(&g, 0, 3), Some(2));
    }

    #[test]
    fn distances_match_plain_dijkstra() {
        let g = diamond();
        let (dist, _) = dijkstra_with_predecessors(&g, 0);
        assert_eq!(dist, dijkstra(&g, 0));
    }

    #[test]
    fn self_path_is_single_node() {
        let g = diamond();
        assert_eq!(shortest_route(&g, 2, 2), Some(vec![2]));
        assert_eq!(route_hops(&g, 2, 2), Some(0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::with_nodes(3);
        g.add_node(Point::new(0.0, 0.0));
        g.add_edge(0, 1, 1.0).unwrap();
        assert_eq!(shortest_route(&g, 0, 2), None);
        assert_eq!(route_hops(&g, 0, 2), None);
    }

    #[test]
    fn path_edges_exist_and_sum_to_distance() {
        let g = diamond();
        let (dist, pred) = dijkstra_with_predecessors(&g, 0);
        let path = extract_path(&pred, 0, 3).unwrap();
        let mut total = 0.0;
        for w in path.windows(2) {
            let weight = g.edge_weight(w[0], w[1]).expect("path edge must exist");
            total += weight;
        }
        assert!((total - dist[3]).abs() < 1e-12);
    }
}
