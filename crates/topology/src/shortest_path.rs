//! Shortest-path routines: binary-heap Dijkstra, parallel all-pairs
//! shortest paths, and a Floyd–Warshall reference used by tests.
//!
//! Link weights are propagation delays, so shortest paths model the routing
//! the paper assumes when deriving client–server round-trip times from the
//! BRITE topology.

use crate::graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry inverted into a min-heap by ordering on `Reverse`d cost.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance pops first. Weights are finite and
        // non-negative by Graph's construction invariant, so partial_cmp
        // never fails.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("edge weights are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path distances from `source`.
///
/// Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(graph: &Graph, source: usize) -> Vec<f64> {
    let n = graph.node_count();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source as u32,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        let u = node as usize;
        if d > dist[u] {
            continue; // stale entry
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: v as u32,
                });
            }
        }
    }
    dist
}

/// All-pairs shortest path matrix, one Dijkstra per source, parallelised
/// over sources with `dve-par`.
///
/// Returns a dense row-major `n x n` matrix; entry `[s][t]` is the one-way
/// shortest-path delay from `s` to `t`.
pub fn all_pairs(graph: &Graph) -> Vec<Vec<f64>> {
    let sources: Vec<usize> = (0..graph.node_count()).collect();
    dve_par::par_map(&sources, |&s| dijkstra(graph, s))
}

/// Floyd–Warshall reference implementation (O(n^3)); used to cross-check
/// Dijkstra in tests and acceptable for graphs of a few hundred nodes.
pub fn floyd_warshall(graph: &Graph) -> Vec<Vec<f64>> {
    let n = graph.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (u, v, w) in graph.edges() {
        if w < d[u][v] {
            d[u][v] = w;
            d[v][u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if dik.is_infinite() {
                continue;
            }
            for j in 0..n {
                let through = dik + d[k][j];
                if through < d[i][j] {
                    d[i][j] = through;
                }
            }
        }
    }
    d
}

/// Eccentricity-style summary of a distance matrix: `(max, mean)` over all
/// ordered pairs of distinct nodes. Infinite entries (disconnected pairs)
/// are excluded from the mean but reported via `max` as infinity.
pub fn distance_summary(matrix: &[Vec<f64>]) -> (f64, f64) {
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &d) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            if d.is_finite() {
                sum += d;
                count += 1;
                if d > max {
                    max = d;
                }
            } else {
                max = f64::INFINITY;
            }
        }
    }
    let mean = if count == 0 { 0.0 } else { sum / count as f64 };
    (max, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Point;

    fn line(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_node(Point::new(i as f64, 0.0));
        }
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn dijkstra_on_line() {
        let g = line(5);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dijkstra_prefers_cheaper_indirect_path() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 5.0).unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], 2.0);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dijkstra_panics_on_bad_source() {
        let g = line(2);
        dijkstra(&g, 10);
    }

    #[test]
    fn all_pairs_matches_per_source_dijkstra() {
        let g = line(6);
        let apsp = all_pairs(&g);
        for s in 0..6 {
            assert_eq!(apsp[s], dijkstra(&g, s));
        }
    }

    #[test]
    fn floyd_warshall_matches_dijkstra_on_mesh() {
        let mut g = Graph::with_nodes(5);
        let edges = [
            (0, 1, 2.0),
            (1, 2, 3.0),
            (2, 3, 1.0),
            (3, 4, 2.5),
            (0, 4, 10.0),
            (1, 3, 3.5),
        ];
        for (u, v, w) in edges {
            g.add_edge(u, v, w).unwrap();
        }
        let fw = floyd_warshall(&g);
        let ap = all_pairs(&g);
        for i in 0..5 {
            for j in 0..5 {
                assert!(
                    (fw[i][j] - ap[i][j]).abs() < 1e-9,
                    "mismatch at ({i},{j}): fw={} dij={}",
                    fw[i][j],
                    ap[i][j]
                );
            }
        }
    }

    #[test]
    fn distance_summary_reports_max_and_mean() {
        let g = line(3);
        let (max, mean) = distance_summary(&all_pairs(&g));
        assert_eq!(max, 2.0);
        // pairs: (0,1)=1 (0,2)=2 (1,0)=1 (1,2)=1 (2,0)=2 (2,1)=1 -> mean 8/6
        assert!((mean - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn distance_summary_flags_disconnection() {
        let g = Graph::with_nodes(2);
        let (max, _) = distance_summary(&all_pairs(&g));
        assert!(max.is_infinite());
    }
}
