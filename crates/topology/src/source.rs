//! Pluggable delay sources: answer `rtt(a, b)` queries without forcing
//! every consumer to hold a dense node×node matrix.
//!
//! [`DelayMatrix`](crate::DelayMatrix) materialises all-pairs RTTs — the
//! right tool at paper scale (500 nodes ≈ 2 MB), but a layer that only
//! ever asks for RTTs *towards a fixed target set* (the m server nodes)
//! should not pay O(V²) memory or the O(V·E log V) all-pairs sweep. The
//! [`DelaySource`] trait is that seam:
//!
//! * [`DelaySource::rtt`] — one pairwise query;
//! * [`DelaySource::rtt_from`] — a full single-source row (one Dijkstra
//!   for graph-backed sources, a copy for the dense matrix);
//! * [`DelaySource::gather_to`] — RTTs from **every** node to a small
//!   target set, the only bulk shape the assignment pipeline needs
//!   (O(V·m) output, never O(V²)).
//!
//! [`OnDemandDelays`] is the million-client implementation: it keeps the
//! graph (O(V+E)), estimates the diameter from a handful of landmark
//! eccentricity sweeps (instead of the exact all-pairs maximum), and
//! answers every query by scaled single-source Dijkstra, memoising the
//! most recent rows. Its delays follow the same "scale the diameter to
//! `max_rtt_ms`" model as [`DelayMatrix`], with the scale derived from
//! the landmark estimate — a documented approximation: the estimated
//! diameter is a lower bound on the true one, so on-demand RTTs are an
//! upper bound on the matrix's (equal whenever the sweeps find a true
//! peripheral pair, which the double sweep does on these topologies).

use crate::delay::{DelayError, DelayMatrix};
use crate::graph::Graph;
use crate::shortest_path::dijkstra;
use parking_lot::Mutex;

/// Answers round-trip-time queries between topology nodes. See the
/// module docs for the contract; all delays are milliseconds, finite and
/// non-negative, with `rtt(a, a) == 0`.
pub trait DelaySource: Send + Sync {
    /// Number of nodes the source covers.
    fn nodes(&self) -> usize;

    /// Round-trip delay between nodes `a` and `b` in milliseconds.
    fn rtt(&self, a: usize, b: usize) -> f64;

    /// Fills `out` (length [`DelaySource::nodes`]) with the RTTs from
    /// `source` to every node.
    fn rtt_from(&self, source: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.nodes(), "row buffer must cover nodes");
        for (node, slot) in out.iter_mut().enumerate() {
            *slot = self.rtt(source, node);
        }
    }

    /// Fills `out[node * targets.len() + t]` with `rtt(node, targets[t])`
    /// for every node — the gather shape the assignment pipeline
    /// consumes (delays from everywhere towards the server nodes).
    ///
    /// The default reads [`DelaySource::rtt`] per entry, which is exact
    /// for table-backed sources; graph-backed sources override it with
    /// one single-source sweep per target.
    fn gather_to(&self, targets: &[usize], out: &mut [f64]) {
        let m = targets.len();
        assert_eq!(out.len(), self.nodes() * m, "gather buffer shape");
        for node in 0..self.nodes() {
            for (t, &target) in targets.iter().enumerate() {
                out[node * m + t] = self.rtt(node, target);
            }
        }
    }
}

impl DelaySource for DelayMatrix {
    fn nodes(&self) -> usize {
        self.len()
    }

    #[inline]
    fn rtt(&self, a: usize, b: usize) -> f64 {
        DelayMatrix::rtt(self, a, b)
    }
    // `rtt_from`/`gather_to` defaults read `rtt` per entry — O(1) each
    // on the dense matrix, already optimal.
}

/// How many recent Dijkstra rows an [`OnDemandDelays`] memoises for
/// pairwise `rtt` queries (the bulk paths never go through the cache).
const ROW_CACHE: usize = 8;

/// A delay source that answers from the graph itself: O(V+E) resident
/// memory, one scaled Dijkstra per queried source row.
///
/// The diameter used for scaling is estimated by landmark sweeps (a
/// double sweep plus farthest-first probes) rather than the exact
/// all-pairs maximum, so construction is O(landmarks · E log V) — this
/// is what lets the million-client pipeline skip the O(V²) node matrix
/// entirely.
pub struct OnDemandDelays {
    graph: Graph,
    /// Multiplier taking graph distances to milliseconds.
    scale: f64,
    /// The probed landmark nodes (diagnostics/tests).
    landmarks: Vec<usize>,
    /// Estimated graph diameter in raw distance units.
    diameter_est: f64,
    /// MRU memo of recent Dijkstra rows for pairwise queries.
    cache: Mutex<Vec<(usize, Vec<f64>)>>,
}

impl std::fmt::Debug for OnDemandDelays {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnDemandDelays")
            .field("nodes", &self.graph.node_count())
            .field("scale", &self.scale)
            .field("landmarks", &self.landmarks)
            .finish()
    }
}

impl OnDemandDelays {
    /// Builds an on-demand source over `graph`, scaling the estimated
    /// diameter to `max_rtt_ms` (paper default: 500 ms).
    ///
    /// `extra_landmarks` is the number of farthest-first probes run on
    /// top of the double sweep (0 keeps just the double sweep; a handful
    /// sharpens the estimate on irregular graphs). Errors mirror
    /// [`DelayMatrix::from_graph`]: disconnected graphs, non-positive
    /// `max_rtt_ms`, and sub-2-node graphs are rejected.
    pub fn from_graph(
        graph: &Graph,
        max_rtt_ms: f64,
        extra_landmarks: usize,
    ) -> Result<OnDemandDelays, DelayError> {
        if !(max_rtt_ms.is_finite() && max_rtt_ms > 0.0) {
            return Err(DelayError::BadMaxRtt(max_rtt_ms));
        }
        let n = graph.node_count();
        if n < 2 {
            return Err(DelayError::TooSmall(n));
        }

        // Double sweep: Dijkstra from node 0 finds a peripheral node u;
        // from u the farthest node v; from v confirm. Every sweep also
        // proves connectivity (any infinite distance fails fast).
        let mut landmarks = Vec::with_capacity(extra_landmarks + 3);
        let mut diameter_est = 0.0f64;
        // min-distance to the landmark set, for farthest-first probes.
        let mut min_dist = vec![f64::INFINITY; n];
        let mut probe = 0usize;
        for _ in 0..extra_landmarks + 3 {
            let row = dijkstra(graph, probe);
            let mut farthest = (0.0f64, probe);
            for (node, &d) in row.iter().enumerate() {
                if !d.is_finite() {
                    return Err(DelayError::Disconnected);
                }
                if d > farthest.0 {
                    farthest = (d, node);
                }
                if d < min_dist[node] {
                    min_dist[node] = d;
                }
            }
            landmarks.push(probe);
            diameter_est = diameter_est.max(farthest.0);
            // Next probe: first sweeps chase the farthest node found
            // (the double sweep); once that converges, fall back to the
            // node farthest from every landmark so far (farthest-first).
            probe = if landmarks.contains(&farthest.1) {
                let (mut best, mut best_node) = (f64::NEG_INFINITY, farthest.1);
                for (node, &d) in min_dist.iter().enumerate() {
                    if d > best {
                        best = d;
                        best_node = node;
                    }
                }
                best_node
            } else {
                farthest.1
            };
            if landmarks.contains(&probe) {
                break;
            }
        }

        let scale = if diameter_est > 0.0 {
            max_rtt_ms / diameter_est
        } else {
            // All probed nodes coincide; treat as uniform zero delay,
            // matching DelayMatrix's degenerate branch.
            0.0
        };
        Ok(OnDemandDelays {
            graph: graph.clone(),
            scale,
            landmarks,
            diameter_est,
            cache: Mutex::new(Vec::with_capacity(ROW_CACHE)),
        })
    }

    /// The nodes probed while estimating the diameter.
    pub fn landmarks(&self) -> &[usize] {
        &self.landmarks
    }

    /// The estimated diameter, already scaled to milliseconds (the
    /// largest RTT this source can report along a probed direction).
    pub fn estimated_max_rtt(&self) -> f64 {
        self.diameter_est * self.scale
    }

    /// One scaled single-source sweep, bypassing the cache.
    fn sweep(&self, source: usize, out: &mut [f64]) {
        let row = dijkstra(&self.graph, source);
        for (slot, d) in out.iter_mut().zip(row) {
            *slot = d * self.scale;
        }
    }
}

impl DelaySource for OnDemandDelays {
    fn nodes(&self) -> usize {
        self.graph.node_count()
    }

    /// Pairwise query via the memoised row of `a` (one Dijkstra on a
    /// cache miss). Delays are evaluated from the `a` side; the model is
    /// symmetric up to floating-point summation order along the path.
    fn rtt(&self, a: usize, b: usize) -> f64 {
        let mut cache = self.cache.lock();
        if let Some(pos) = cache.iter().position(|(src, _)| *src == a) {
            let row = cache.remove(pos);
            let value = row.1[b];
            cache.push(row); // keep MRU order
            return value;
        }
        let mut row = vec![0.0; self.nodes()];
        self.sweep(a, &mut row);
        let value = row[b];
        if cache.len() >= ROW_CACHE {
            cache.remove(0);
        }
        cache.push((a, row));
        value
    }

    fn rtt_from(&self, source: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.nodes(), "row buffer must cover nodes");
        self.sweep(source, out);
    }

    /// One Dijkstra per target (delays are read from the target side,
    /// using the model's symmetry) — O(m · E log V) total, independent
    /// of how many clients later consume the gathered table.
    fn gather_to(&self, targets: &[usize], out: &mut [f64]) {
        let m = targets.len();
        let n = self.nodes();
        assert_eq!(out.len(), n * m, "gather buffer shape");
        let mut row = vec![0.0; n];
        for (t, &target) in targets.iter().enumerate() {
            self.sweep(target, &mut row);
            for (node, &d) in row.iter().enumerate() {
                out[node * m + t] = d;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Point;
    use crate::hierarchical::flat_waxman;
    use crate::waxman::WaxmanParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(weights: &[f64]) -> Graph {
        let mut g = Graph::new();
        for i in 0..=weights.len() {
            g.add_node(Point::new(i as f64, 0.0));
        }
        for (i, &w) in weights.iter().enumerate() {
            g.add_edge(i, i + 1, w).unwrap();
        }
        g
    }

    #[test]
    fn matrix_implements_the_trait_consistently() {
        let g = path_graph(&[1.0, 2.0, 3.0]);
        let m = DelayMatrix::from_graph(&g, 500.0).unwrap();
        let source: &dyn DelaySource = &m;
        assert_eq!(source.nodes(), 4);
        let mut row = vec![0.0; 4];
        source.rtt_from(2, &mut row);
        for b in 0..4 {
            assert_eq!(row[b], m.rtt(2, b));
        }
        let targets = [3usize, 0];
        let mut gathered = vec![0.0; 4 * 2];
        source.gather_to(&targets, &mut gathered);
        for node in 0..4 {
            assert_eq!(gathered[node * 2], m.rtt(node, 3));
            assert_eq!(gathered[node * 2 + 1], m.rtt(node, 0));
        }
    }

    #[test]
    fn on_demand_matches_matrix_on_a_path() {
        // The double sweep finds the exact diameter of a path, so the
        // scales coincide and every RTT matches the dense matrix.
        let g = path_graph(&[1.0, 2.0, 3.0, 1.5]);
        let dense = DelayMatrix::from_graph(&g, 500.0).unwrap();
        let lazy = OnDemandDelays::from_graph(&g, 500.0, 0).unwrap();
        assert!((lazy.estimated_max_rtt() - 500.0).abs() < 1e-9);
        for a in 0..5 {
            for b in 0..5 {
                assert!(
                    (lazy.rtt(a, b) - dense.rtt(a, b)).abs() < 1e-9,
                    "rtt({a},{b})"
                );
            }
        }
    }

    #[test]
    fn on_demand_tracks_matrix_on_random_topologies() {
        let mut rng = StdRng::seed_from_u64(7);
        let topo = flat_waxman(60, 2, 100.0, WaxmanParams::default(), &mut rng);
        let dense = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
        let lazy = OnDemandDelays::from_graph(&topo.graph, 500.0, 4).unwrap();
        // The landmark estimate lower-bounds the true diameter, so
        // on-demand RTTs upper-bound the dense matrix's entries.
        for a in (0..60).step_by(7) {
            for b in (0..60).step_by(11) {
                assert!(
                    lazy.rtt(a, b) >= dense.rtt(a, b) - 1e-6,
                    "rtt({a},{b}): lazy {} under dense {}",
                    lazy.rtt(a, b),
                    dense.rtt(a, b)
                );
            }
        }
        // The gather is exactly one scaled Dijkstra per target.
        let targets = [5usize, 17, 42];
        let mut gathered = vec![0.0; 60 * 3];
        lazy.gather_to(&targets, &mut gathered);
        for (t, &target) in targets.iter().enumerate() {
            let raw = dijkstra(&topo.graph, target);
            for node in 0..60 {
                assert_eq!(gathered[node * 3 + t], raw[node] * lazy.scale);
            }
        }
    }

    #[test]
    fn on_demand_caches_rows_and_stays_consistent() {
        let g = path_graph(&[2.0, 2.0, 2.0]);
        let lazy = OnDemandDelays::from_graph(&g, 300.0, 1).unwrap();
        // Hammer pairwise queries across more sources than the cache
        // holds; values must stay stable.
        let first = lazy.rtt(0, 3);
        for a in 0..4 {
            for b in 0..4 {
                let x = lazy.rtt(a, b);
                let y = lazy.rtt(a, b);
                assert_eq!(x, y);
                assert!((lazy.rtt(b, a) - x).abs() < 1e-9, "symmetric model");
            }
        }
        assert_eq!(lazy.rtt(0, 3), first);
        assert_eq!(lazy.rtt(1, 1), 0.0);
    }

    #[test]
    fn on_demand_rejects_bad_inputs() {
        let g = path_graph(&[1.0]);
        assert!(matches!(
            OnDemandDelays::from_graph(&g, 0.0, 2),
            Err(DelayError::BadMaxRtt(_))
        ));
        assert!(matches!(
            OnDemandDelays::from_graph(&Graph::with_nodes(1), 500.0, 2),
            Err(DelayError::TooSmall(1))
        ));
        assert!(matches!(
            OnDemandDelays::from_graph(&Graph::with_nodes(3), 500.0, 2),
            Err(DelayError::Disconnected)
        ));
    }
}
