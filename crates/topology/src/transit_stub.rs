//! GT-ITM-style transit-stub topologies (extension beyond the paper).
//!
//! Transit-stub is the other classic Internet-like generator family: a
//! small Waxman transit core, where each transit node anchors several stub
//! domains (again Waxman), and stubs reach the rest of the network only
//! through their transit node. Included as an additional topology family
//! for sensitivity studies; the paper's experiments use the hierarchical
//! BA/Waxman model in [`crate::hierarchical`].

use crate::graph::{Graph, Point};
use crate::hierarchical::{Topology, TopologyKind};
use crate::waxman::{waxman_incremental_into, WaxmanParams};
use rand::Rng;

/// Configuration for [`transit_stub`] generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit (core) routers.
    pub transit_nodes: usize,
    /// Stub domains hanging off each transit node.
    pub stubs_per_transit: usize,
    /// Router count inside each stub domain.
    pub nodes_per_stub: usize,
    /// Links per new node in each Waxman phase.
    pub links_per_node: usize,
    /// Waxman shape parameters (shared by core and stubs).
    pub waxman: WaxmanParams,
    /// Side length of the square generation plane.
    pub plane: f64,
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        TransitStubConfig {
            transit_nodes: 8,
            stubs_per_transit: 3,
            nodes_per_stub: 8,
            links_per_node: 2,
            waxman: WaxmanParams::default(),
            plane: 1000.0,
        }
    }
}

impl TransitStubConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.transit_nodes == 0 || self.nodes_per_stub == 0 {
            return Err("transit and stub node counts must be >= 1".into());
        }
        if self.links_per_node == 0 {
            return Err("links per node must be >= 1".into());
        }
        if !(self.plane.is_finite() && self.plane > 0.0) {
            return Err("plane must be positive".into());
        }
        self.waxman.validate()
    }

    /// Total node count: transit core plus all stub routers.
    pub fn total_nodes(&self) -> usize {
        self.transit_nodes + self.transit_nodes * self.stubs_per_transit * self.nodes_per_stub
    }
}

/// Generates a transit-stub topology. Each stub domain gets its own AS
/// label; the transit core is AS 0.
pub fn transit_stub<R: Rng + ?Sized>(config: &TransitStubConfig, rng: &mut R) -> Topology {
    config.validate().expect("invalid transit-stub config");
    let mut graph = Graph::new();
    let l = config.plane * std::f64::consts::SQRT_2;

    // Transit core: Waxman over the whole plane.
    let core = waxman_incremental_into(
        &mut graph,
        config.transit_nodes,
        config.links_per_node,
        Point::new(0.0, 0.0),
        config.plane,
        l,
        config.waxman,
        rng,
    );
    let mut as_of_node = vec![0u16; core.len()];
    let mut next_as = 1u16;

    // Stub domains: small Waxman patches near their transit anchor.
    let patch = config.plane / (config.transit_nodes.max(1) as f64).sqrt() / 2.0;
    for &t in &core {
        for _ in 0..config.stubs_per_transit {
            let anchor = graph.coord(t);
            let origin = Point::new(
                (anchor.x - patch / 2.0).max(0.0),
                (anchor.y - patch / 2.0).max(0.0),
            );
            let stub = waxman_incremental_into(
                &mut graph,
                config.nodes_per_stub,
                config.links_per_node,
                origin,
                patch,
                l,
                config.waxman,
                rng,
            );
            as_of_node.extend(std::iter::repeat_n(next_as, stub.len()));
            next_as += 1;
            // Stub-to-transit uplink from a random stub router.
            let gw = stub[rng.gen_range(0..stub.len())];
            let d = graph.coord_dist(gw, t).max(f64::MIN_POSITIVE);
            graph.add_edge(gw, t, d).unwrap();
        }
    }
    graph.connect_components_euclidean();
    Topology {
        graph,
        as_of_node,
        kind: TopologyKind::TransitStub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_counts() {
        let c = TransitStubConfig::default();
        assert_eq!(c.total_nodes(), 8 + 8 * 3 * 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn generates_connected_topology() {
        let mut rng = StdRng::seed_from_u64(21);
        let config = TransitStubConfig::default();
        let t = transit_stub(&config, &mut rng);
        assert_eq!(t.node_count(), config.total_nodes());
        assert!(t.graph.is_connected());
        assert_eq!(t.kind, TopologyKind::TransitStub);
        // 1 core AS + one AS per stub domain
        assert_eq!(t.as_count(), 1 + 8 * 3);
    }

    #[test]
    fn validation_rejects_zero_nodes() {
        let mut c = TransitStubConfig::default();
        c.transit_nodes = 0;
        assert!(c.validate().is_err());
    }
}
