//! Waxman random graphs — the router-level model of BRITE's hierarchical
//! top-down generation used by the paper (25 router nodes per AS).
//!
//! Waxman's model connects nodes `u, v` with probability
//! `P(u, v) = alpha * exp(-d(u,v) / (beta * L))` where `d` is Euclidean
//! distance and `L` the maximum possible distance in the plane. Two
//! variants are provided:
//!
//! * [`waxman_flat`] — the classic model: an independent coin flip per
//!   pair, followed by a connectivity repair pass (BRITE does the same).
//! * [`waxman_incremental`] — BRITE's `RT_WAXMAN` incremental growth: each
//!   new node attaches `m` links to existing nodes sampled with
//!   probability proportional to the Waxman weight, which guarantees
//!   connectivity by construction.

use crate::graph::{Graph, Point};
use rand::Rng;

/// Shape parameters of the Waxman probability function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanParams {
    /// Overall edge density knob, `0 < alpha <= 1`.
    pub alpha: f64,
    /// Locality knob, `0 < beta <= 1`; small beta strongly favours short
    /// links.
    pub beta: f64,
}

impl Default for WaxmanParams {
    /// BRITE's default Waxman parameters (`alpha = 0.15`, `beta = 0.2`).
    fn default() -> Self {
        WaxmanParams {
            alpha: 0.15,
            beta: 0.2,
        }
    }
}

impl WaxmanParams {
    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("waxman alpha {} outside (0, 1]", self.alpha));
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(format!("waxman beta {} outside (0, 1]", self.beta));
        }
        Ok(())
    }

    /// The Waxman connection weight for distance `d` given a maximum plane
    /// distance `l`.
    pub fn weight(&self, d: f64, l: f64) -> f64 {
        self.alpha * (-d / (self.beta * l)).exp()
    }
}

/// Places `n` points uniformly at random in the square
/// `[origin.x, origin.x + side] x [origin.y, origin.y + side]`.
pub fn scatter_nodes<R: Rng + ?Sized>(
    g: &mut Graph,
    n: usize,
    origin: Point,
    side: f64,
    rng: &mut R,
) -> Vec<usize> {
    (0..n)
        .map(|_| {
            let p = Point::new(
                origin.x + rng.gen::<f64>() * side,
                origin.y + rng.gen::<f64>() * side,
            );
            g.add_node(p)
        })
        .collect()
}

/// Classic (flat) Waxman graph over `n` nodes in a `side x side` plane.
///
/// Disconnected outputs are repaired by adding geometrically shortest
/// cross-component edges.
pub fn waxman_flat<R: Rng + ?Sized>(
    n: usize,
    side: f64,
    params: WaxmanParams,
    rng: &mut R,
) -> Graph {
    params.validate().expect("invalid Waxman parameters");
    let mut g = Graph::new();
    let nodes = scatter_nodes(&mut g, n, Point::new(0.0, 0.0), side, rng);
    let l = side * std::f64::consts::SQRT_2;
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            let d = g.coord_dist(nodes[i], nodes[j]);
            if rng.gen::<f64>() < params.weight(d, l) {
                g.add_edge_euclidean(nodes[i], nodes[j]).unwrap();
            }
        }
    }
    g.connect_components_euclidean();
    g
}

/// BRITE-style incremental Waxman: grows the graph one node at a time,
/// attaching `m` links per new node to existing nodes sampled with
/// probability proportional to the Waxman weight.
///
/// The subgraph is generated inside the square anchored at `origin` with
/// the given `side`, appended to `g`; returns the new node ids. The caller
/// supplies the plane's maximum distance `l` so that nested (hierarchical)
/// generation can use the *global* plane scale, as BRITE does.
pub fn waxman_incremental_into<R: Rng + ?Sized>(
    g: &mut Graph,
    n: usize,
    m: usize,
    origin: Point,
    side: f64,
    l: f64,
    params: WaxmanParams,
    rng: &mut R,
) -> Vec<usize> {
    params.validate().expect("invalid Waxman parameters");
    assert!(m >= 1, "each new node must add at least one link");
    let nodes = scatter_nodes(g, n, origin, side, rng);
    if nodes.len() <= 1 {
        return nodes;
    }
    // Seed: connect the first min(m+1, n) nodes in a chain so early joiners
    // have somewhere to attach.
    let seed = (m + 1).min(nodes.len());
    for w in nodes.windows(2).take(seed - 1) {
        g.add_edge_euclidean(w[0], w[1]).unwrap();
    }
    let mut weights = Vec::new();
    for (idx, &u) in nodes.iter().enumerate().skip(seed) {
        // Sample up to m distinct targets among nodes[0..idx] by repeated
        // roulette-wheel over Waxman weights.
        weights.clear();
        weights.extend(nodes[..idx].iter().map(|&v| {
            let d = g.coord_dist(u, v);
            params.weight(d, l).max(1e-12)
        }));
        let mut picked = Vec::with_capacity(m);
        for _ in 0..m.min(idx) {
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                break;
            }
            let mut shot = rng.gen::<f64>() * total;
            let mut chosen = idx - 1;
            for (k, &w) in weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                shot -= w;
                if shot <= 0.0 {
                    chosen = k;
                    break;
                }
            }
            picked.push(nodes[chosen]);
            weights[chosen] = 0.0; // without replacement
        }
        for v in picked {
            g.add_edge_euclidean(u, v).unwrap();
        }
    }
    nodes
}

/// Standalone incremental Waxman graph over a `side x side` plane.
pub fn waxman_incremental<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    side: f64,
    params: WaxmanParams,
    rng: &mut R,
) -> Graph {
    let mut g = Graph::new();
    let l = side * std::f64::consts::SQRT_2;
    waxman_incremental_into(&mut g, n, m, Point::new(0.0, 0.0), side, l, params, rng);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_validate_ranges() {
        assert!(WaxmanParams::default().validate().is_ok());
        assert!(WaxmanParams {
            alpha: 0.0,
            beta: 0.2
        }
        .validate()
        .is_err());
        assert!(WaxmanParams {
            alpha: 0.5,
            beta: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn weight_decays_with_distance() {
        let p = WaxmanParams::default();
        let l = 100.0;
        assert!(p.weight(0.0, l) > p.weight(50.0, l));
        assert!(p.weight(50.0, l) > p.weight(100.0, l));
        assert!((p.weight(0.0, l) - p.alpha).abs() < 1e-12);
    }

    #[test]
    fn flat_waxman_is_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = waxman_flat(40, 100.0, WaxmanParams::default(), &mut rng);
        assert_eq!(g.node_count(), 40);
        assert!(g.is_connected());
    }

    #[test]
    fn incremental_waxman_connected_by_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 25, 60] {
            let g = waxman_incremental(n, 2, 100.0, WaxmanParams::default(), &mut rng);
            assert_eq!(g.node_count(), n);
            assert!(g.is_connected(), "n={n} must be connected");
        }
    }

    #[test]
    fn incremental_waxman_edge_count_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 30;
        let m = 2;
        let g = waxman_incremental(n, m, 100.0, WaxmanParams::default(), &mut rng);
        // chain seed (m edges) + m per remaining node, minus duplicate merges
        assert!(g.edge_count() >= n - 1);
        assert!(g.edge_count() <= m + (n - m - 1) * m);
    }

    #[test]
    fn incremental_prefers_local_links() {
        // With a tiny beta, links should be dramatically shorter on average
        // than with beta close to 1.
        let side = 1000.0;
        let avg_len = |beta: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = waxman_incremental(120, 2, side, WaxmanParams { alpha: 0.9, beta }, &mut rng);
            g.total_weight() / g.edge_count() as f64
        };
        let local = avg_len(0.02, 5);
        let global = avg_len(1.0, 5);
        assert!(
            local < global * 0.8,
            "local {local} should be well under global {global}"
        );
    }

    #[test]
    fn scatter_stays_in_box() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Graph::new();
        let ids = scatter_nodes(&mut g, 50, Point::new(10.0, 20.0), 5.0, &mut rng);
        for id in ids {
            let p = g.coord(id);
            assert!(p.x >= 10.0 && p.x <= 15.0);
            assert!(p.y >= 20.0 && p.y <= 25.0);
        }
    }
}
