//! Property tests for the topology substrate: generator invariants and
//! shortest-path correctness against the Floyd–Warshall reference.

use dve_topology::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_waxman_always_connected(n in 1usize..60, m in 1usize..4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = waxman_incremental(n, m, 100.0, WaxmanParams::default(), &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn barabasi_always_connected(n in 1usize..60, m in 1usize..4, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(n, m, 100.0, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn flat_waxman_repair_yields_connected(n in 2usize..40, seed in any::<u64>(),
                                           alpha in 0.05f64..1.0, beta in 0.05f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = waxman_flat(n, 50.0, WaxmanParams { alpha, beta }, &mut rng);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn dijkstra_matches_floyd_warshall(seed in any::<u64>(), n in 2usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = waxman_incremental(n, 2, 100.0, WaxmanParams::default(), &mut rng);
        let fw = floyd_warshall(&g);
        let ap = all_pairs(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((fw[i][j] - ap[i][j]).abs() < 1e-6,
                    "({}, {}): fw={} dijkstra={}", i, j, fw[i][j], ap[i][j]);
            }
        }
    }

    #[test]
    fn delay_matrix_invariants(seed in any::<u64>(), n in 2usize..30, max_rtt in 1.0f64..1000.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = waxman_incremental(n, 2, 100.0, WaxmanParams::default(), &mut rng);
        let m = DelayMatrix::from_graph(&g, max_rtt).unwrap();
        // symmetric, zero diagonal, max == max_rtt, triangle inequality
        prop_assert!((m.max_rtt() - max_rtt).abs() < 1e-6);
        for i in 0..n {
            prop_assert_eq!(m.rtt(i, i), 0.0);
            for j in 0..n {
                prop_assert!((m.rtt(i, j) - m.rtt(j, i)).abs() < 1e-9);
                for k in 0..n {
                    prop_assert!(m.rtt(i, j) <= m.rtt(i, k) + m.rtt(k, j) + 1e-6);
                }
            }
        }
    }

    #[test]
    fn hierarchical_labels_partition_nodes(seed in any::<u64>(),
                                           as_count in 1usize..6,
                                           routers in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = HierarchicalConfig {
            as_count,
            routers_per_as: routers,
            ..Default::default()
        };
        let topo = hierarchical(&config, &mut rng);
        prop_assert_eq!(topo.node_count(), as_count * routers);
        prop_assert!(topo.graph.is_connected());
        let mut seen = 0usize;
        for asn in 0..as_count {
            seen += topo.nodes_in_as(asn as u16).len();
        }
        prop_assert_eq!(seen, topo.node_count());
    }
}
