//! Arrival-time distributions for the event stream (extension beyond
//! the paper).
//!
//! The Table 3 protocol and the tick-driven mobility model deliver every
//! event "at" its epoch or tick — fine for batch studies, but the
//! serving layer's staleness policy (`max_staleness` ticks between
//! flushes) only models wall-clock if events actually *spread over*
//! wall-clock. [`InterArrival`] is that spread: a per-event inter-arrival
//! gap sampler, measured in ticks, attached to a tick's event draw by
//! [`MobilityModel::timed_events`](crate::MobilityModel::timed_events).
//! With [`InterArrival::Exponential`] the events of a tick form a
//! Poisson-style arrival process, so a staleness bound of `t` ticks is a
//! wall-clock deadline of `t` tick-lengths — what the latency studies
//! need ticks to mean.

use rand::Rng;

/// How events spread over wall-clock within the stream, in tick units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum InterArrival {
    /// Every event lands at the start of its tick — the historical batch
    /// semantics (gap 0).
    #[default]
    AtTick,
    /// Exponentially distributed inter-arrival gaps with the given mean,
    /// in ticks — the memoryless arrival process of classic traffic
    /// models. `mean_gap_ticks` must be positive and finite.
    Exponential {
        /// Mean gap between consecutive events, in ticks.
        mean_gap_ticks: f64,
    },
}

impl InterArrival {
    /// Draws one inter-arrival gap in ticks. [`InterArrival::AtTick`]
    /// never touches the RNG (the historical draw discipline is
    /// preserved bit for bit); the exponential draw uses inverse
    /// transform sampling on one uniform.
    pub fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            InterArrival::AtTick => 0.0,
            InterArrival::Exponential { mean_gap_ticks } => {
                assert!(
                    mean_gap_ticks.is_finite() && mean_gap_ticks > 0.0,
                    "mean inter-arrival gap must be positive, got {mean_gap_ticks}"
                );
                // 1 - u is in (0, 1]: ln never sees zero.
                -mean_gap_ticks * (1.0 - rng.gen::<f64>()).ln()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn at_tick_draws_nothing_and_returns_zero() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(InterArrival::AtTick.sample_gap(&mut a), 0.0);
        // The RNG stream is untouched: both generators stay in step.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn exponential_gaps_match_the_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let arrival = InterArrival::Exponential {
            mean_gap_ticks: 0.25,
        };
        let n = 20_000;
        let total: f64 = (0..n).map(|_| arrival.sample_gap(&mut rng)).sum();
        let mean = total / n as f64;
        assert!(
            (0.24..0.26).contains(&mean),
            "empirical mean {mean} far from 0.25"
        );
    }

    #[test]
    fn exponential_gaps_are_positive_and_finite() {
        let mut rng = StdRng::seed_from_u64(13);
        let arrival = InterArrival::Exponential {
            mean_gap_ticks: 2.0,
        };
        for _ in 0..1000 {
            let gap = arrival.sample_gap(&mut rng);
            assert!(gap.is_finite() && gap >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exponential_rejects_nonpositive_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        InterArrival::Exponential {
            mean_gap_ticks: 0.0,
        }
        .sample_gap(&mut rng);
    }
}
