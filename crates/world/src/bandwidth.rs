//! The bandwidth (server-resource) model of Pellegrino & Dovrolis [20].
//!
//! The paper measures server resource consumption as network bandwidth and
//! estimates it from zone populations: "the bandwidth requirement in
//! client-server architectures increases quadratically with the total
//! number of clients that are interacting with each other". With the
//! paper's defaults — 25 input messages per second of 100 bytes each — a
//! client in a zone with `n` members sends one input stream upstream and
//! receives per-member state downstream, so its load on the *target*
//! server is `f*S*(1 + n)` and a whole zone costs `f*S*n*(n+1)`: quadratic
//! in `n`.
//!
//! When a client's contact server differs from its target server, all its
//! traffic is forwarded, consuming `R^C = 2 R^T` on the contact server
//! (section 2.1 of the paper).

use serde::{Deserialize, Serialize};

/// Per-client message-rate parameters (paper defaults: 25 msg/s, 100 B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Input/update sending frequency in messages per second.
    pub msgs_per_sec: f64,
    /// Size of each input/update message in bytes.
    pub msg_bytes: f64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        BandwidthModel {
            msgs_per_sec: 25.0,
            msg_bytes: 100.0,
        }
    }
}

impl BandwidthModel {
    /// Base unidirectional stream rate `f * S` in bits per second.
    pub fn stream_bps(&self) -> f64 {
        self.msgs_per_sec * self.msg_bytes * 8.0
    }

    /// `R^T_c`: bandwidth a client consumes on its target server when its
    /// zone has `zone_population` clients (including itself). Strictly
    /// positive, as the paper requires (`R^T_c > 0`).
    pub fn client_target_bps(&self, zone_population: usize) -> f64 {
        self.stream_bps() * (1.0 + zone_population as f64)
    }

    /// `R_z`: total bandwidth a zone of `n` clients consumes on its target
    /// server: `sum of R^T_c = f*S*n*(n+1)` — quadratic in `n`.
    pub fn zone_bps(&self, n: usize) -> f64 {
        self.stream_bps() * n as f64 * (n as f64 + 1.0)
    }

    /// `R^C_c`: extra bandwidth on a *contact* server that forwards for a
    /// client whose target is elsewhere (`2 R^T_c`); zero when contact and
    /// target coincide (callers handle that case).
    pub fn client_forwarding_bps(&self, zone_population: usize) -> f64 {
        2.0 * self.client_target_bps(zone_population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_stream_rate() {
        // 25 msg/s * 100 B * 8 = 20 kbps
        let m = BandwidthModel::default();
        assert!((m.stream_bps() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn zone_load_is_quadratic() {
        let m = BandwidthModel::default();
        let r10 = m.zone_bps(10);
        let r20 = m.zone_bps(20);
        // doubling n roughly quadruples load: 20*21 / (10*11) = 3.82
        assert!((r20 / r10 - (20.0 * 21.0) / (10.0 * 11.0)).abs() < 1e-12);
    }

    #[test]
    fn zone_load_is_sum_of_client_loads() {
        let m = BandwidthModel::default();
        let n = 7;
        let total: f64 = (0..n).map(|_| m.client_target_bps(n)).sum();
        assert!((m.zone_bps(n) - total).abs() < 1e-6);
    }

    #[test]
    fn forwarding_doubles_target_load() {
        let m = BandwidthModel::default();
        assert!((m.client_forwarding_bps(5) - 2.0 * m.client_target_bps(5)).abs() < 1e-12);
    }

    #[test]
    fn target_load_positive_even_in_empty_zone_edge() {
        // R^T_c > 0 must hold for every client; population 1 (just the
        // client) gives f*S*2.
        let m = BandwidthModel::default();
        assert!(m.client_target_bps(1) > 0.0);
        assert!((m.client_target_bps(1) - 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_zone_consumes_nothing() {
        let m = BandwidthModel::default();
        assert_eq!(m.zone_bps(0), 0.0);
    }

    #[test]
    fn default_config_baseline_utilisation_matches_paper_ballpark() {
        // 1000 clients in 80 zones (12.5 avg) against 500 Mbps total
        // should sit near the 0.55-0.6 utilisation Table 1 reports for
        // the VirC algorithms.
        let m = BandwidthModel::default();
        let per_zone = m.zone_bps(13); // 12.5 rounded up
        let total = per_zone * 80.0;
        let utilisation = total / 500e6;
        assert!(
            (0.4..0.75).contains(&utilisation),
            "utilisation {utilisation}"
        );
    }
}
