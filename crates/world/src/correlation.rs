//! The physical-world / virtual-world correlation model (parameter
//! `delta`, after Nguyen, Safaei & Boustead [19] as used in the paper).
//!
//! "The higher the value of delta is, the stronger the tendency for
//! clients from the close geographic locations to gather in specific zones
//! of the virtual world." We realise this by giving every geographic
//! region (AS domain of the topology) a preferred block of zones: with
//! probability `delta` a client picks a zone from its region's preferred
//! block, and with probability `1 - delta` it picks from the whole zone
//! set. Both picks respect the zone population weights (hot zones), so
//! correlation composes with virtual-world clustering.

use crate::distribution::WeightedIndex;
use rand::Rng;

/// Maps geographic regions to preferred zone blocks and samples zones
/// according to the `delta`-mixture.
#[derive(Debug, Clone)]
pub struct CorrelationModel {
    zones: usize,
    regions: usize,
    delta: f64,
    /// Preferred zones per region (contiguous blocks, round-robin padded).
    preferred: Vec<Vec<usize>>,
}

impl CorrelationModel {
    /// Builds the model. `delta` must be in [0, 1]; `zones` and `regions`
    /// must be positive.
    pub fn new(zones: usize, regions: usize, delta: f64) -> Self {
        assert!(zones > 0, "need at least one zone");
        assert!(regions > 0, "need at least one region");
        assert!((0.0..=1.0).contains(&delta), "delta {delta} outside [0,1]");
        // Contiguous block partition: region r prefers zones
        // [r*B, (r+1)*B) where B = ceil(zones / regions); the last blocks
        // wrap so every region has at least one preferred zone.
        let block = zones.div_ceil(regions);
        let preferred = (0..regions)
            .map(|r| {
                let start = (r * block) % zones;
                (0..block).map(|k| (start + k) % zones).collect()
            })
            .collect();
        CorrelationModel {
            zones,
            regions,
            delta,
            preferred,
        }
    }

    /// Number of zones covered.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// The correlation parameter.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Preferred zone block of `region`.
    pub fn preferred_zones(&self, region: usize) -> &[usize] {
        &self.preferred[region % self.regions]
    }

    /// Samples a zone using explicit raw weights (hot-zone aware both for
    /// the correlated and uncorrelated branch): with probability `delta`
    /// the pick is restricted to the region's preferred block, otherwise
    /// it is drawn from the full weighted table.
    pub fn sample_zone_weighted<R: Rng + ?Sized>(
        &self,
        region: usize,
        raw_weights: &[f64],
        full_table: &WeightedIndex,
        rng: &mut R,
    ) -> usize {
        assert_eq!(raw_weights.len(), self.zones);
        if rng.gen::<f64>() < self.delta {
            let block = self.preferred_zones(region);
            let weights: Vec<f64> = block.iter().map(|&z| raw_weights[z]).collect();
            let idx = WeightedIndex::new(&weights).sample(rng);
            block[idx]
        } else {
            full_table.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blocks_cover_all_regions() {
        let m = CorrelationModel::new(80, 20, 0.5);
        for r in 0..20 {
            let block = m.preferred_zones(r);
            assert_eq!(block.len(), 4); // 80 / 20
            for &z in block {
                assert!(z < 80);
            }
        }
    }

    #[test]
    fn more_regions_than_zones_wraps() {
        let m = CorrelationModel::new(3, 7, 0.5);
        for r in 0..7 {
            assert!(!m.preferred_zones(r).is_empty());
            for &z in m.preferred_zones(r) {
                assert!(z < 3);
            }
        }
    }

    #[test]
    fn delta_one_always_prefers_home_block() {
        let m = CorrelationModel::new(80, 20, 1.0);
        let mut rng = StdRng::seed_from_u64(8);
        let weights = vec![1.0; 80];
        let table = WeightedIndex::new(&weights);
        for _ in 0..500 {
            let z = m.sample_zone_weighted(3, &weights, &table, &mut rng);
            assert!(m.preferred_zones(3).contains(&z));
        }
    }

    #[test]
    fn delta_zero_spreads_over_all_zones() {
        let m = CorrelationModel::new(10, 2, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let weights = vec![1.0; 10];
        let table = WeightedIndex::new(&weights);
        let mut seen = [false; 10];
        for _ in 0..2000 {
            seen[m.sample_zone_weighted(0, &weights, &table, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all zones should be hit");
    }

    #[test]
    fn weighted_sampling_respects_hot_zones_in_block() {
        // Region 0 prefers zones 0..4; make zone 2 hot.
        let m = CorrelationModel::new(8, 2, 1.0);
        let mut weights = vec![1.0; 8];
        weights[2] = 50.0;
        let table = WeightedIndex::new(&weights);
        let mut rng = StdRng::seed_from_u64(8);
        let mut hits2 = 0;
        let n = 4000;
        for _ in 0..n {
            if m.sample_zone_weighted(0, &weights, &table, &mut rng) == 2 {
                hits2 += 1;
            }
        }
        assert!(
            hits2 as f64 / n as f64 > 0.8,
            "hot zone share {}",
            hits2 as f64 / n as f64
        );
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_delta() {
        CorrelationModel::new(10, 2, 1.5);
    }
}
