//! The world-layer delay handle: a [`DelaySource`] plus the gathered
//! node→server RTT table — the **only** delay structure the assignment
//! and serving layers need.
//!
//! Before this module, every consumer threaded a dense node×node
//! `DelayMatrix` through the pipeline, even though the CAP only ever
//! asks for delays *towards the m server nodes*. [`WorldDelays`] gathers
//! exactly that shape once (`O(nodes × servers)` memory, one bulk
//! [`DelaySource::gather_to`] call — m Dijkstras for a graph-backed
//! source, m row reads for a dense one) and keeps the source handle for
//! anything off the hot path. At a million clients on a 500-node
//! substrate the gather table is ~800 KB where the per-client tables of
//! the pre-refactor pipeline were gigabytes.

use crate::world::World;
use dve_topology::{DelayMatrix, DelaySource};
use std::sync::Arc;

/// A shared delay source plus the node→server gather table for one
/// world's server placement. Cheap to clone: the gather table sits
/// behind an [`Arc`], so handles, shared-layout instances, and their
/// clones all reference **one** substrate-sized table.
#[derive(Clone)]
pub struct WorldDelays {
    source: Arc<dyn DelaySource>,
    /// Topology node of each server, in server-index order.
    server_nodes: Vec<usize>,
    /// `to_server[node * m + s]` = RTT from `node` to server `s`'s node.
    to_server: Arc<Vec<f64>>,
}

impl std::fmt::Debug for WorldDelays {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldDelays")
            .field("nodes", &self.nodes())
            .field("servers", &self.server_nodes.len())
            .finish()
    }
}

impl WorldDelays {
    /// Gathers the node→server table for `world`'s servers from any
    /// delay source.
    pub fn for_world(source: Arc<dyn DelaySource>, world: &World) -> WorldDelays {
        Self::for_servers(
            source,
            &world.servers.iter().map(|s| s.node).collect::<Vec<_>>(),
        )
    }

    /// [`WorldDelays::for_world`] from an explicit server-node list.
    pub fn for_servers(source: Arc<dyn DelaySource>, server_nodes: &[usize]) -> WorldDelays {
        let nodes = source.nodes();
        for &node in server_nodes {
            assert!(node < nodes, "server node {node} outside the substrate");
        }
        let mut to_server = vec![0.0; nodes * server_nodes.len()];
        source.gather_to(server_nodes, &mut to_server);
        WorldDelays {
            source,
            server_nodes: server_nodes.to_vec(),
            to_server: Arc::new(to_server),
        }
    }

    /// Convenience for the dense pipeline: wraps a [`DelayMatrix`] as
    /// the source (its gather reads the matrix entries directly, so the
    /// table is bit-identical to per-pair `rtt` lookups).
    pub fn from_matrix(matrix: DelayMatrix, world: &World) -> WorldDelays {
        WorldDelays::for_world(Arc::new(matrix), world)
    }

    /// Number of topology nodes covered.
    pub fn nodes(&self) -> usize {
        self.source.nodes()
    }

    /// Number of servers gathered.
    pub fn num_servers(&self) -> usize {
        self.server_nodes.len()
    }

    /// Topology node of server `s`.
    pub fn server_node(&self, s: usize) -> usize {
        self.server_nodes[s]
    }

    /// RTT from topology node `node` to server `s`, milliseconds.
    #[inline]
    pub fn client_rtt(&self, node: usize, s: usize) -> f64 {
        self.to_server[node * self.server_nodes.len() + s]
    }

    /// RTTs from `node` to every server (server-index order).
    #[inline]
    pub fn server_row(&self, node: usize) -> &[f64] {
        let m = self.server_nodes.len();
        &self.to_server[node * m..(node + 1) * m]
    }

    /// RTT between the nodes of servers `a` and `b` (read from the
    /// gather table: a server is a node like any other).
    #[inline]
    pub fn server_rtt(&self, a: usize, b: usize) -> f64 {
        self.client_rtt(self.server_nodes[a], b)
    }

    /// The full gather table, node-major (`nodes × servers`) — the bulk
    /// input of the blocked instance builders.
    pub fn table(&self) -> &[f64] {
        &self.to_server
    }

    /// The gather table behind its shared handle — what shared-layout
    /// instances store, so the substrate-sized table exists exactly once
    /// no matter how many instances or clones reference it.
    pub fn shared_table(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.to_server)
    }

    /// The underlying source, for off-hot-path pairwise queries.
    pub fn source(&self) -> &Arc<dyn DelaySource> {
        &self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use dve_topology::{flat_waxman, OnDemandDelays, WaxmanParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world_and_matrix(seed: u64) -> (World, DelayMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = flat_waxman(40, 2, 100.0, WaxmanParams::default(), &mut rng);
        let delays = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
        let config = ScenarioConfig::from_notation("4s-8z-60c-100cp").unwrap();
        let world = World::generate(&config, 40, &topo.as_of_node, &mut rng).unwrap();
        (world, delays)
    }

    #[test]
    fn gather_matches_matrix_lookups_bit_for_bit() {
        let (world, matrix) = world_and_matrix(1);
        let wd = WorldDelays::from_matrix(matrix.clone(), &world);
        assert_eq!(wd.nodes(), 40);
        assert_eq!(wd.num_servers(), 4);
        for node in 0..40 {
            for (s, server) in world.servers.iter().enumerate() {
                assert_eq!(wd.client_rtt(node, s), matrix.rtt(node, server.node));
                assert_eq!(wd.server_row(node)[s], matrix.rtt(node, server.node));
            }
        }
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    wd.server_rtt(a, b),
                    matrix.rtt(world.servers[a].node, world.servers[b].node)
                );
            }
        }
    }

    #[test]
    fn works_over_an_on_demand_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = flat_waxman(50, 2, 100.0, WaxmanParams::default(), &mut rng);
        let lazy = OnDemandDelays::from_graph(&topo.graph, 500.0, 2).unwrap();
        let config = ScenarioConfig::from_notation("5s-8z-40c-100cp").unwrap();
        let world = World::generate(&config, 50, &topo.as_of_node, &mut rng).unwrap();
        let wd = WorldDelays::for_world(Arc::new(lazy), &world);
        assert_eq!(wd.num_servers(), 5);
        for (s, server) in world.servers.iter().enumerate() {
            assert_eq!(wd.server_node(s), server.node);
            // A server is at zero RTT from itself.
            assert_eq!(wd.client_rtt(server.node, s), 0.0);
        }
        // Table shape and finiteness.
        assert_eq!(wd.table().len(), 50 * 5);
        assert!(wd.table().iter().all(|d| d.is_finite()));
    }

    #[test]
    #[should_panic(expected = "outside the substrate")]
    fn rejects_out_of_range_server_nodes() {
        let (world, matrix) = world_and_matrix(5);
        let _ = world;
        WorldDelays::for_servers(Arc::new(matrix), &[99]);
    }
}
