//! Client distribution types — Table 2 of the paper.
//!
//! The paper studies four combinations of clustering in the physical world
//! (PW) and the virtual world (VW):
//!
//! | Type | Clusters in PW | Clusters in VW |
//! |------|----------------|----------------|
//! | 0    | no             | no             |
//! | 1    | yes            | no             |
//! | 2    | no             | yes            |
//! | 3    | yes            | yes            |
//!
//! Clustered zones get a population weight 10x that of normal zones
//! ("the number of clients in a clustered zone is 10 times larger");
//! clustered physical nodes likewise attract 10x the clients.

use serde::{Deserialize, Serialize};

/// The four PW/VW clustering combinations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistributionType {
    /// Type 0: uniform everywhere.
    Uniform,
    /// Type 1: clustered physical world, uniform virtual world.
    ClusteredPhysical,
    /// Type 2: uniform physical world, clustered virtual world.
    ClusteredVirtual,
    /// Type 3: clustered in both worlds.
    ClusteredBoth,
}

impl DistributionType {
    /// All four types, in Table 2 order.
    pub const ALL: [DistributionType; 4] = [
        DistributionType::Uniform,
        DistributionType::ClusteredPhysical,
        DistributionType::ClusteredVirtual,
        DistributionType::ClusteredBoth,
    ];

    /// Table 2 index (0-3).
    pub fn index(&self) -> usize {
        match self {
            DistributionType::Uniform => 0,
            DistributionType::ClusteredPhysical => 1,
            DistributionType::ClusteredVirtual => 2,
            DistributionType::ClusteredBoth => 3,
        }
    }

    /// Whether clients cluster on physical-world nodes.
    pub fn clustered_physical(&self) -> bool {
        matches!(
            self,
            DistributionType::ClusteredPhysical | DistributionType::ClusteredBoth
        )
    }

    /// Whether clients cluster in virtual-world zones.
    pub fn clustered_virtual(&self) -> bool {
        matches!(
            self,
            DistributionType::ClusteredVirtual | DistributionType::ClusteredBoth
        )
    }
}

/// Weighted sampling table: cumulative weights over item indices.
///
/// Used for both hot-zone and hot-node selection. Weights must be
/// non-negative with a positive sum.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Builds the table; panics on empty or all-zero weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weight {w} must be >= 0");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "weights must not all be zero");
        WeightedIndex { cumulative, total }
    }

    /// Samples an index using the uniform variate `u` in [0, 1).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let shot = rng.gen::<f64>() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&shot).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True iff there are no items (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Builds Zipf-distributed popularity weights: the item ranked `r`
/// (1-based) gets weight `1 / r^exponent`, with ranks assigned uniformly
/// at random across items. An alternative to the paper's 10x hot-zone
/// model for studies of smoother popularity skew (real MMOG zone
/// popularity is closer to Zipf than to two-level).
pub fn zipf_weights<R: rand::Rng + ?Sized>(items: usize, exponent: f64, rng: &mut R) -> Vec<f64> {
    assert!(exponent >= 0.0, "Zipf exponent must be >= 0");
    let mut ranks: Vec<usize> = (1..=items).collect();
    // Fisher-Yates shuffle so rank 1 lands on a random item.
    for i in (1..items).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    ranks
        .into_iter()
        .map(|r| (r as f64).powf(-exponent))
        .collect()
}

/// Builds per-item weights where `hot_count` randomly chosen items get
/// `hot_factor` weight and the rest get 1.0. Returns `(weights, hot set)`.
pub fn hot_weights<R: rand::Rng + ?Sized>(
    items: usize,
    hot_count: usize,
    hot_factor: f64,
    rng: &mut R,
) -> (Vec<f64>, Vec<usize>) {
    let mut weights = vec![1.0; items];
    let mut indices: Vec<usize> = (0..items).collect();
    // Partial Fisher-Yates: pick hot_count distinct indices.
    let hot_count = hot_count.min(items);
    for k in 0..hot_count {
        let pick = rng.gen_range(k..items);
        indices.swap(k, pick);
    }
    let hot: Vec<usize> = indices[..hot_count].to_vec();
    for &h in &hot {
        weights[h] = hot_factor;
    }
    (weights, hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table2_mapping() {
        assert_eq!(DistributionType::Uniform.index(), 0);
        assert_eq!(DistributionType::ClusteredPhysical.index(), 1);
        assert_eq!(DistributionType::ClusteredVirtual.index(), 2);
        assert_eq!(DistributionType::ClusteredBoth.index(), 3);
        assert!(!DistributionType::Uniform.clustered_physical());
        assert!(DistributionType::ClusteredPhysical.clustered_physical());
        assert!(!DistributionType::ClusteredPhysical.clustered_virtual());
        assert!(DistributionType::ClusteredBoth.clustered_virtual());
        assert!(DistributionType::ClusteredBoth.clustered_physical());
        assert_eq!(DistributionType::ALL.len(), 4);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightedIndex::new(&[1.0, 0.0, 9.0]);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((6.0..13.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn weighted_index_rejects_zero_total() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn hot_weights_marks_requested_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let (w, hot) = hot_weights(10, 3, 10.0, &mut rng);
        assert_eq!(hot.len(), 3);
        assert_eq!(w.iter().filter(|&&x| x == 10.0).count(), 3);
        assert_eq!(w.iter().filter(|&&x| x == 1.0).count(), 7);
        // hot indices are distinct
        let mut h = hot.clone();
        h.sort_unstable();
        h.dedup();
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn hot_weights_clamps_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let (w, hot) = hot_weights(2, 5, 10.0, &mut rng);
        assert_eq!(hot.len(), 2);
        assert!(w.iter().all(|&x| x == 10.0));
    }

    #[test]
    fn zipf_weights_have_zipf_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = zipf_weights(100, 1.0, &mut rng);
        assert_eq!(w.len(), 100);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // rank-1 weight is 1, rank-2 is 1/2, rank-100 is 1/100.
        assert!((sorted[0] - 1.0).abs() < 1e-12);
        assert!((sorted[1] - 0.5).abs() < 1e-12);
        assert!((sorted[99] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = zipf_weights(10, 0.0, &mut rng);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn zipf_ranks_are_shuffled() {
        // With 50 items the top rank should not always land on index 0.
        let mut hits_at_zero = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = zipf_weights(50, 1.0, &mut rng);
            if (w[0] - 1.0).abs() < 1e-12 {
                hits_at_zero += 1;
            }
        }
        assert!(hits_at_zero < 10, "rank 1 stuck at index 0");
    }
}
