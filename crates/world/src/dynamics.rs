//! DVE population dynamics: join, leave, and zone-move events (Table 3 of
//! the paper: "200 new clients randomly join, 200 existing clients
//! randomly leave the virtual world and 200 clients randomly move to
//! another zone").
//!
//! Applying dynamics returns the updated world, a provenance map so the
//! simulation can carry surviving clients' contact/target servers across
//! the change (the paper's "After" column measures QoS *without*
//! re-running the assignment algorithms), and a structured [`WorldDelta`]
//! — the exact join/leave/move events with their affected zones — so
//! downstream cost structures can update incrementally instead of
//! rebuilding per epoch (Section 3.4's "execute again" step, made cheap).

use crate::world::{Client, World};
use rand::Rng;

/// A batch of dynamics to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynamicsBatch {
    /// Clients joining (placed like the original population).
    pub joins: usize,
    /// Clients leaving (chosen uniformly).
    pub leaves: usize,
    /// Clients moving to a different, uniformly chosen zone.
    pub moves: usize,
}

impl DynamicsBatch {
    /// The paper's Table 3 batch: 200 joins, 200 leaves, 200 moves.
    pub fn paper_default() -> Self {
        DynamicsBatch {
            joins: 200,
            leaves: 200,
            moves: 200,
        }
    }
}

/// A client joining the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientJoin {
    /// Index of the joiner in the *new* world's client vector.
    pub client: usize,
    /// Zone the joiner appears in.
    pub zone: usize,
}

/// A client leaving the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientLeave {
    /// Index of the leaver in the *old* world's client vector.
    pub client: usize,
    /// Zone the leaver was in.
    pub zone: usize,
}

/// A surviving client moving between zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMove {
    /// Index of the mover in the *old* world's client vector.
    pub old_index: usize,
    /// Index of the mover in the *new* world's client vector.
    pub new_index: usize,
    /// Zone the client left.
    pub from: usize,
    /// Zone the client entered.
    pub to: usize,
}

/// Structured description of one churn step: every join, leave, and
/// zone move with its affected zone(s) and both-world client indices.
///
/// This is the contract incremental consumers build on: a join or leave
/// touches exactly one zone, a move touches exactly two, so a delta-aware
/// cost structure (`CostMatrix::apply_delta` in `dve-assign`) only has to
/// revisit [`WorldDelta::touched_zones`] instead of rebuilding all n
/// zones from the k clients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldDelta {
    /// Clients that joined, ascending by new-world index.
    pub joins: Vec<ClientJoin>,
    /// Clients that left, ascending by old-world index.
    pub leaves: Vec<ClientLeave>,
    /// Surviving clients whose zone changed, ascending by new-world index.
    pub moves: Vec<ZoneMove>,
}

impl WorldDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty() && self.moves.is_empty()
    }

    /// Total number of churn events (joins + leaves + moves).
    pub fn len(&self) -> usize {
        self.joins.len() + self.leaves.len() + self.moves.len()
    }

    /// Zones whose membership changed, sorted and deduplicated.
    pub fn touched_zones(&self) -> Vec<usize> {
        let mut zones: Vec<usize> = self
            .joins
            .iter()
            .map(|j| j.zone)
            .chain(self.leaves.iter().map(|l| l.zone))
            .chain(self.moves.iter().flat_map(|m| [m.from, m.to]))
            .collect();
        zones.sort_unstable();
        zones.dedup();
        zones
    }

    /// Net population change per zone (`zones` long): joins and move-ins
    /// count +1, leaves and move-outs −1.
    pub fn population_shift(&self, zones: usize) -> Vec<isize> {
        let mut shift = vec![0isize; zones];
        for j in &self.joins {
            shift[j.zone] += 1;
        }
        for l in &self.leaves {
            shift[l.zone] -= 1;
        }
        for m in &self.moves {
            shift[m.from] -= 1;
            shift[m.to] += 1;
        }
        shift
    }
}

/// Result of applying dynamics.
#[derive(Debug, Clone)]
pub struct DynamicsOutcome {
    /// The updated world.
    pub world: World,
    /// For every client in the new world: `Some(old_index)` if it existed
    /// before (possibly in a different zone), `None` if it just joined.
    pub carried_from: Vec<Option<usize>>,
    /// New-world indices of clients that changed zone.
    pub moved: Vec<usize>,
    /// The structured churn events, for delta-aware consumers.
    pub delta: WorldDelta,
}

/// Applies a [`DynamicsBatch`] to a world.
///
/// Leaves are drawn first (uniformly, without replacement), then moves are
/// drawn among survivors, then joiners are appended. Joiners' physical
/// nodes are sampled uniformly over the topology nodes (`num_nodes`) and
/// their zones uniformly over the world's zones — matching the paper's
/// `delta = 0` dynamics experiment.
pub fn apply_dynamics<R: Rng + ?Sized>(
    world: &World,
    batch: &DynamicsBatch,
    num_nodes: usize,
    rng: &mut R,
) -> DynamicsOutcome {
    let n = world.clients.len();
    let leaves = batch.leaves.min(n);

    // Choose leavers: partial Fisher-Yates over client indices.
    let mut idx: Vec<usize> = (0..n).collect();
    for k in 0..leaves {
        let pick = rng.gen_range(k..n);
        idx.swap(k, pick);
    }
    let mut leaving = vec![false; n];
    for &i in &idx[..leaves] {
        leaving[i] = true;
    }

    // Survivors, preserving order, remembering provenance.
    let mut clients: Vec<Client> = Vec::with_capacity(n - leaves + batch.joins);
    let mut carried_from: Vec<Option<usize>> = Vec::with_capacity(n - leaves + batch.joins);
    for (i, c) in world.clients.iter().enumerate() {
        if !leaving[i] {
            clients.push(*c);
            carried_from.push(Some(i));
        }
    }

    // Movers among survivors.
    let survivors = clients.len();
    let moves = batch.moves.min(survivors);
    let mut moved = Vec::with_capacity(moves);
    let mut zone_moves: Vec<ZoneMove> = Vec::with_capacity(moves);
    if survivors > 0 {
        let mut order: Vec<usize> = (0..survivors).collect();
        for k in 0..moves {
            let pick = rng.gen_range(k..survivors);
            order.swap(k, pick);
        }
        for &i in &order[..moves] {
            let old_zone = clients[i].zone;
            if world.zones > 1 {
                let mut new_zone = rng.gen_range(0..world.zones - 1);
                if new_zone >= old_zone {
                    new_zone += 1; // uniform over zones != old_zone
                }
                clients[i].zone = new_zone;
                zone_moves.push(ZoneMove {
                    old_index: carried_from[i].expect("movers are survivors"),
                    new_index: i,
                    from: old_zone,
                    to: new_zone,
                });
            }
            moved.push(i);
        }
    }
    zone_moves.sort_unstable_by_key(|m| m.new_index);

    // Joiners.
    let mut joins = Vec::with_capacity(batch.joins);
    for _ in 0..batch.joins {
        // Same draw order as the pre-delta implementation (node, then
        // zone) so fixed-seed runs stay reproducible across versions.
        let node = rng.gen_range(0..num_nodes);
        let zone = rng.gen_range(0..world.zones);
        joins.push(ClientJoin {
            client: clients.len(),
            zone,
        });
        clients.push(Client { node, zone });
        carried_from.push(None);
    }

    let mut leave_events: Vec<ClientLeave> = idx[..leaves]
        .iter()
        .map(|&i| ClientLeave {
            client: i,
            zone: world.clients[i].zone,
        })
        .collect();
    leave_events.sort_unstable_by_key(|l| l.client);

    let mut new_world = world.clone();
    new_world.clients = clients;
    DynamicsOutcome {
        world: new_world,
        carried_from,
        moved,
        delta: WorldDelta {
            joins,
            leaves: leave_events,
            moves: zone_moves,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
        let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
        World::generate(&config, 100, &labels, &mut rng).unwrap()
    }

    #[test]
    fn population_arithmetic() {
        let w = small_world(1);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = DynamicsBatch {
            joins: 30,
            leaves: 50,
            moves: 20,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        assert_eq!(out.world.clients.len(), 200 - 50 + 30);
        assert_eq!(out.carried_from.len(), out.world.clients.len());
        assert_eq!(out.moved.len(), 20);
        let joined = out.carried_from.iter().filter(|c| c.is_none()).count();
        assert_eq!(joined, 30);
    }

    #[test]
    fn movers_change_zone() {
        let w = small_world(3);
        let mut rng = StdRng::seed_from_u64(4);
        let batch = DynamicsBatch {
            joins: 0,
            leaves: 0,
            moves: 40,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        for &i in &out.moved {
            let old = out.carried_from[i].unwrap();
            assert_ne!(out.world.clients[i].zone, w.clients[old].zone);
            assert_eq!(out.world.clients[i].node, w.clients[old].node);
        }
    }

    #[test]
    fn survivors_keep_their_state() {
        let w = small_world(5);
        let mut rng = StdRng::seed_from_u64(6);
        let batch = DynamicsBatch {
            joins: 10,
            leaves: 10,
            moves: 0,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        for (i, carried) in out.carried_from.iter().enumerate() {
            if let Some(old) = carried {
                assert_eq!(out.world.clients[i], w.clients[*old]);
            }
        }
    }

    #[test]
    fn leaves_capped_at_population() {
        let w = small_world(7);
        let mut rng = StdRng::seed_from_u64(8);
        let batch = DynamicsBatch {
            joins: 0,
            leaves: 10_000,
            moves: 5,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        assert!(out.world.clients.is_empty());
        assert!(out.moved.is_empty());
    }

    #[test]
    fn delta_is_consistent_with_provenance() {
        let w = small_world(11);
        let mut rng = StdRng::seed_from_u64(12);
        let batch = DynamicsBatch {
            joins: 25,
            leaves: 35,
            moves: 15,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        let d = &out.delta;
        assert_eq!(d.joins.len(), 25);
        assert_eq!(d.leaves.len(), 35);
        assert_eq!(d.moves.len(), 15);
        assert_eq!(d.len(), 75);
        assert!(!d.is_empty());

        // Joins are exactly the provenance-None clients, zones match.
        let joined: Vec<usize> = out
            .carried_from
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(d.joins.iter().map(|j| j.client).collect::<Vec<_>>(), joined);
        for j in &d.joins {
            assert_eq!(out.world.clients[j.client].zone, j.zone);
        }

        // Leaves are exactly the old indices absent from the provenance.
        let survived: std::collections::HashSet<usize> =
            out.carried_from.iter().flatten().copied().collect();
        for l in &d.leaves {
            assert!(!survived.contains(&l.client));
            assert_eq!(w.clients[l.client].zone, l.zone);
        }
        assert!(d.leaves.windows(2).all(|p| p[0].client < p[1].client));

        // Moves map old zone -> new zone through the provenance.
        for m in &d.moves {
            assert_eq!(out.carried_from[m.new_index], Some(m.old_index));
            assert_eq!(w.clients[m.old_index].zone, m.from);
            assert_eq!(out.world.clients[m.new_index].zone, m.to);
            assert_ne!(m.from, m.to);
        }

        // Population shift reconciles old and new zone populations.
        let shift = d.population_shift(w.zones);
        let mut old_pop = vec![0isize; w.zones];
        for c in &w.clients {
            old_pop[c.zone] += 1;
        }
        let mut new_pop = vec![0isize; w.zones];
        for c in &out.world.clients {
            new_pop[c.zone] += 1;
        }
        for z in 0..w.zones {
            assert_eq!(old_pop[z] + shift[z], new_pop[z], "zone {z}");
        }
        // Touched zones cover every population change.
        let touched = d.touched_zones();
        for z in 0..w.zones {
            if shift[z] != 0 {
                assert!(touched.contains(&z));
            }
        }
    }

    #[test]
    fn empty_delta_for_empty_batch() {
        let w = small_world(13);
        let mut rng = StdRng::seed_from_u64(14);
        let out = apply_dynamics(&w, &DynamicsBatch::default(), 100, &mut rng);
        assert!(out.delta.is_empty());
        assert_eq!(out.delta.len(), 0);
        assert!(out.delta.touched_zones().is_empty());
    }

    #[test]
    fn paper_default_batch() {
        let b = DynamicsBatch::paper_default();
        assert_eq!((b.joins, b.leaves, b.moves), (200, 200, 200));
    }

    #[test]
    fn empty_batch_is_identity_on_population() {
        let w = small_world(9);
        let mut rng = StdRng::seed_from_u64(10);
        let out = apply_dynamics(&w, &DynamicsBatch::default(), 100, &mut rng);
        assert_eq!(out.world.clients, w.clients);
        assert!(out.carried_from.iter().all(|c| c.is_some()));
    }
}
