//! DVE population dynamics: join, leave, and zone-move events (Table 3 of
//! the paper: "200 new clients randomly join, 200 existing clients
//! randomly leave the virtual world and 200 clients randomly move to
//! another zone").
//!
//! Applying dynamics returns both the updated world and a provenance map
//! so the simulation can carry surviving clients' contact/target servers
//! across the change (the paper's "After" column measures QoS *without*
//! re-running the assignment algorithms).

use crate::world::{Client, World};
use rand::Rng;

/// A batch of dynamics to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynamicsBatch {
    /// Clients joining (placed like the original population).
    pub joins: usize,
    /// Clients leaving (chosen uniformly).
    pub leaves: usize,
    /// Clients moving to a different, uniformly chosen zone.
    pub moves: usize,
}

impl DynamicsBatch {
    /// The paper's Table 3 batch: 200 joins, 200 leaves, 200 moves.
    pub fn paper_default() -> Self {
        DynamicsBatch {
            joins: 200,
            leaves: 200,
            moves: 200,
        }
    }
}

/// Result of applying dynamics.
#[derive(Debug, Clone)]
pub struct DynamicsOutcome {
    /// The updated world.
    pub world: World,
    /// For every client in the new world: `Some(old_index)` if it existed
    /// before (possibly in a different zone), `None` if it just joined.
    pub carried_from: Vec<Option<usize>>,
    /// New-world indices of clients that changed zone.
    pub moved: Vec<usize>,
}

/// Applies a [`DynamicsBatch`] to a world.
///
/// Leaves are drawn first (uniformly, without replacement), then moves are
/// drawn among survivors, then joiners are appended. Joiners' physical
/// nodes are sampled uniformly over the topology nodes (`num_nodes`) and
/// their zones uniformly over the world's zones — matching the paper's
/// `delta = 0` dynamics experiment.
pub fn apply_dynamics<R: Rng + ?Sized>(
    world: &World,
    batch: &DynamicsBatch,
    num_nodes: usize,
    rng: &mut R,
) -> DynamicsOutcome {
    let n = world.clients.len();
    let leaves = batch.leaves.min(n);

    // Choose leavers: partial Fisher-Yates over client indices.
    let mut idx: Vec<usize> = (0..n).collect();
    for k in 0..leaves {
        let pick = rng.gen_range(k..n);
        idx.swap(k, pick);
    }
    let mut leaving = vec![false; n];
    for &i in &idx[..leaves] {
        leaving[i] = true;
    }

    // Survivors, preserving order, remembering provenance.
    let mut clients: Vec<Client> = Vec::with_capacity(n - leaves + batch.joins);
    let mut carried_from: Vec<Option<usize>> = Vec::with_capacity(n - leaves + batch.joins);
    for (i, c) in world.clients.iter().enumerate() {
        if !leaving[i] {
            clients.push(*c);
            carried_from.push(Some(i));
        }
    }

    // Movers among survivors.
    let survivors = clients.len();
    let moves = batch.moves.min(survivors);
    let mut moved = Vec::with_capacity(moves);
    if survivors > 0 {
        let mut order: Vec<usize> = (0..survivors).collect();
        for k in 0..moves {
            let pick = rng.gen_range(k..survivors);
            order.swap(k, pick);
        }
        for &i in &order[..moves] {
            let old_zone = clients[i].zone;
            if world.zones > 1 {
                let mut new_zone = rng.gen_range(0..world.zones - 1);
                if new_zone >= old_zone {
                    new_zone += 1; // uniform over zones != old_zone
                }
                clients[i].zone = new_zone;
            }
            moved.push(i);
        }
    }

    // Joiners.
    for _ in 0..batch.joins {
        clients.push(Client {
            node: rng.gen_range(0..num_nodes),
            zone: rng.gen_range(0..world.zones),
        });
        carried_from.push(None);
    }

    let mut new_world = world.clone();
    new_world.clients = clients;
    DynamicsOutcome {
        world: new_world,
        carried_from,
        moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
        let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
        World::generate(&config, 100, &labels, &mut rng).unwrap()
    }

    #[test]
    fn population_arithmetic() {
        let w = small_world(1);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = DynamicsBatch {
            joins: 30,
            leaves: 50,
            moves: 20,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        assert_eq!(out.world.clients.len(), 200 - 50 + 30);
        assert_eq!(out.carried_from.len(), out.world.clients.len());
        assert_eq!(out.moved.len(), 20);
        let joined = out.carried_from.iter().filter(|c| c.is_none()).count();
        assert_eq!(joined, 30);
    }

    #[test]
    fn movers_change_zone() {
        let w = small_world(3);
        let mut rng = StdRng::seed_from_u64(4);
        let batch = DynamicsBatch {
            joins: 0,
            leaves: 0,
            moves: 40,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        for &i in &out.moved {
            let old = out.carried_from[i].unwrap();
            assert_ne!(out.world.clients[i].zone, w.clients[old].zone);
            assert_eq!(out.world.clients[i].node, w.clients[old].node);
        }
    }

    #[test]
    fn survivors_keep_their_state() {
        let w = small_world(5);
        let mut rng = StdRng::seed_from_u64(6);
        let batch = DynamicsBatch {
            joins: 10,
            leaves: 10,
            moves: 0,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        for (i, carried) in out.carried_from.iter().enumerate() {
            if let Some(old) = carried {
                assert_eq!(out.world.clients[i], w.clients[*old]);
            }
        }
    }

    #[test]
    fn leaves_capped_at_population() {
        let w = small_world(7);
        let mut rng = StdRng::seed_from_u64(8);
        let batch = DynamicsBatch {
            joins: 0,
            leaves: 10_000,
            moves: 5,
        };
        let out = apply_dynamics(&w, &batch, 100, &mut rng);
        assert!(out.world.clients.is_empty());
        assert!(out.moved.is_empty());
    }

    #[test]
    fn paper_default_batch() {
        let b = DynamicsBatch::paper_default();
        assert_eq!((b.joins, b.leaves, b.moves), (200, 200, 200));
    }

    #[test]
    fn empty_batch_is_identity_on_population() {
        let w = small_world(9);
        let mut rng = StdRng::seed_from_u64(10);
        let out = apply_dynamics(&w, &DynamicsBatch::default(), 100, &mut rng);
        assert_eq!(out.world.clients, w.clients);
        assert!(out.carried_from.iter().all(|c| c.is_some()));
    }
}
