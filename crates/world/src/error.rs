//! The delay-estimation error model (Table 4 of the paper).
//!
//! Real systems estimate client–server delays with tools like King
//! (error factor ~1.2) or IDMaps (~2). The paper models this as a
//! multiplicative uniform error: given a true delay `d` and factor `e`,
//! the *observed* delay is uniformly distributed in `[d/e, d*e]`.
//! Assignment algorithms run on observed delays; QoS is evaluated on the
//! true ones.

use rand::Rng;

/// Multiplicative delay estimation error with factor `e >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// The error factor `e`; 1.0 means perfect information.
    pub factor: f64,
}

impl ErrorModel {
    /// Perfect measurements (`e = 1`).
    pub const PERFECT: ErrorModel = ErrorModel { factor: 1.0 };

    /// King-like accuracy (`e = 1.2`).
    pub const KING: ErrorModel = ErrorModel { factor: 1.2 };

    /// IDMaps-like accuracy (`e = 2.0`).
    pub const IDMAPS: ErrorModel = ErrorModel { factor: 2.0 };

    /// Creates a model; panics unless `factor >= 1`.
    pub fn new(factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "error factor {factor} must be >= 1"
        );
        ErrorModel { factor }
    }

    /// Draws the observed value for a true delay `d`: uniform in
    /// `[d/e, d*e]`. With `e = 1` this is exactly `d`.
    pub fn observe<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> f64 {
        if self.factor == 1.0 {
            return d;
        }
        let lo = d / self.factor;
        let hi = d * self.factor;
        lo + rng.gen::<f64>() * (hi - lo)
    }

    /// Applies the error to a whole delay table (row-major `n x n`),
    /// preserving symmetry (an estimator would measure each pair once) and
    /// the zero diagonal.
    pub fn observe_matrix<R: Rng + ?Sized>(&self, n: usize, rtt: &[f64], rng: &mut R) -> Vec<f64> {
        assert_eq!(rtt.len(), n * n);
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let noisy = self.observe(rtt[i * n + j], rng);
                out[i * n + j] = noisy;
                out[j * n + i] = noisy;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        for d in [0.0, 10.0, 250.0] {
            assert_eq!(ErrorModel::PERFECT.observe(d, &mut rng), d);
        }
    }

    #[test]
    fn observed_values_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = ErrorModel::new(2.0);
        for _ in 0..2000 {
            let v = e.observe(100.0, &mut rng);
            assert!((50.0..=200.0).contains(&v), "value {v}");
        }
    }

    #[test]
    fn zero_delay_observes_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(ErrorModel::IDMAPS.observe(0.0, &mut rng), 0.0);
    }

    #[test]
    fn observed_band_is_actually_used() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = ErrorModel::KING;
        let mut lo_seen = f64::INFINITY;
        let mut hi_seen = 0.0f64;
        for _ in 0..5000 {
            let v = e.observe(120.0, &mut rng);
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(lo_seen < 105.0, "lower tail unused: {lo_seen}");
        assert!(hi_seen > 135.0, "upper tail unused: {hi_seen}");
    }

    #[test]
    fn matrix_preserves_symmetry_and_diagonal() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4;
        let mut rtt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rtt[i * n + j] = 100.0 + (i + j) as f64;
                }
            }
        }
        let noisy = ErrorModel::IDMAPS.observe_matrix(n, &rtt, &mut rng);
        for i in 0..n {
            assert_eq!(noisy[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(noisy[i * n + j], noisy[j * n + i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_sub_unity_factor() {
        ErrorModel::new(0.5);
    }
}
