//! Deterministic server-failure schedules for the robustness scenarios.
//!
//! The paper assigns clients assuming every server stays up; a
//! production DVE engine must survive a server dying mid-stream and
//! report how fast quality recovers. This module generates the *fault
//! side* of such scenarios as [`WorldEvent::ServerDown`] /
//! [`WorldEvent::ServerUp`] streams keyed by tick, so every engine
//! consumes failures through the same event vocabulary as churn:
//!
//! * [`FaultKind::Single`] — one server fails once and stays down (the
//!   m→m−1 mass-evacuation drill, the inverse of the flash crowd);
//! * [`FaultKind::Correlated`] — several distinct servers fail at the
//!   same tick (a rack/AZ loss: the hardest evacuation shape, because
//!   the survivors absorb everything at once);
//! * [`FaultKind::FailRecover`] — a server fails and recovers
//!   `down_for` ticks later (m→m−1→m), exercising the re-admission
//!   path.
//!
//! Schedules are seeded and bit-reproducible: the same `(kind, servers,
//! ticks, seed)` always yields the same events, which is what lets the
//! recovery bench replay a schedule and CI gate its recovery time.

use crate::stream::WorldEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated failure schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One server fails at the schedule's midpoint and stays down.
    Single,
    /// `failures` distinct servers fail together at the midpoint.
    Correlated {
        /// How many servers fail at once (clamped to `servers - 1`:
        /// at least one survivor always remains).
        failures: usize,
    },
    /// One server fails at the midpoint and recovers `down_for` ticks
    /// later (clamped to land inside the schedule).
    FailRecover {
        /// Ticks between the [`WorldEvent::ServerDown`] and its
        /// [`WorldEvent::ServerUp`].
        down_for: usize,
    },
}

/// A seeded, tick-keyed server fault schedule. Generate once with
/// [`FaultSchedule::generate`], then drain each tick's events with
/// [`FaultSchedule::events_at`] as the serving loop advances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    ticks: usize,
    /// (tick, event), ascending by tick; downs precede ups within a tick.
    events: Vec<(usize, WorldEvent)>,
}

impl FaultSchedule {
    /// Generates a deterministic schedule of `kind` over `ticks` ticks
    /// against a pool of `servers` servers. Which servers fail is drawn
    /// from `seed`; the failure tick is the schedule midpoint, so every
    /// run has a pre-failure window to baseline quality against and a
    /// post-failure window to recover in.
    ///
    /// Panics if `servers < 2` (a schedule that downs the only server
    /// has no survivors to evacuate to and no recovery to measure) or
    /// `ticks < 2`.
    pub fn generate(kind: FaultKind, servers: usize, ticks: usize, seed: u64) -> FaultSchedule {
        assert!(servers >= 2, "need at least one survivor");
        assert!(ticks >= 2, "need a pre-failure and a post-failure window");
        let mut rng = StdRng::seed_from_u64(seed);
        let fail_at = ticks / 2;
        let mut events = Vec::new();
        match kind {
            FaultKind::Single => {
                let victim = rng.gen_range(0..servers);
                events.push((fail_at, WorldEvent::ServerDown { server: victim }));
            }
            FaultKind::Correlated { failures } => {
                let failures = failures.clamp(1, servers - 1);
                // Distinct victims, draw order preserved (Floyd-style
                // rejection keeps the draw count data-independent enough
                // while staying simple and seeded).
                let mut victims: Vec<usize> = Vec::with_capacity(failures);
                while victims.len() < failures {
                    let v = rng.gen_range(0..servers);
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                for v in victims {
                    events.push((fail_at, WorldEvent::ServerDown { server: v }));
                }
            }
            FaultKind::FailRecover { down_for } => {
                let victim = rng.gen_range(0..servers);
                let up_at = (fail_at + down_for.max(1)).min(ticks - 1);
                events.push((fail_at, WorldEvent::ServerDown { server: victim }));
                events.push((up_at, WorldEvent::ServerUp { server: victim }));
            }
        }
        FaultSchedule { ticks, events }
    }

    /// Ticks the schedule spans.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Every scheduled event with its tick, ascending.
    pub fn events(&self) -> &[(usize, WorldEvent)] {
        &self.events
    }

    /// The events scheduled for `tick` (possibly empty), in order.
    pub fn events_at(&self, tick: usize) -> impl Iterator<Item = WorldEvent> + '_ {
        self.events
            .iter()
            .filter(move |(t, _)| *t == tick)
            .map(|(_, e)| *e)
    }

    /// The tick of the first [`WorldEvent::ServerDown`], if any.
    pub fn first_failure_tick(&self) -> Option<usize> {
        self.events
            .iter()
            .find(|(_, e)| matches!(e, WorldEvent::ServerDown { .. }))
            .map(|(t, _)| *t)
    }

    /// Servers downed anywhere in the schedule, in event order.
    pub fn downed_servers(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|(_, e)| match e {
                WorldEvent::ServerDown { server } => Some(*server),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_schedule_downs_one_server_at_midpoint() {
        let s = FaultSchedule::generate(FaultKind::Single, 10, 8, 7);
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.first_failure_tick(), Some(4));
        let victims = s.downed_servers();
        assert_eq!(victims.len(), 1);
        assert!(victims[0] < 10);
        assert_eq!(s.events_at(4).count(), 1);
        assert_eq!(s.events_at(3).count(), 0);
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        for kind in [
            FaultKind::Single,
            FaultKind::Correlated { failures: 3 },
            FaultKind::FailRecover { down_for: 2 },
        ] {
            let a = FaultSchedule::generate(kind, 20, 12, 99);
            let b = FaultSchedule::generate(kind, 20, 12, 99);
            assert_eq!(a, b);
        }
        let a = FaultSchedule::generate(FaultKind::Single, 20, 12, 1);
        let b = FaultSchedule::generate(FaultKind::Single, 20, 12, 2);
        // Different seeds may pick different victims (not guaranteed,
        // but the schedule shape always matches).
        assert_eq!(a.events().len(), b.events().len());
    }

    #[test]
    fn correlated_failures_are_distinct_and_leave_a_survivor() {
        let s = FaultSchedule::generate(FaultKind::Correlated { failures: 99 }, 5, 6, 3);
        let mut victims = s.downed_servers();
        assert_eq!(victims.len(), 4, "clamped to servers - 1");
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 4, "victims are distinct");
        assert!(
            s.events().iter().all(|(t, _)| *t == 3),
            "one correlated tick"
        );
    }

    #[test]
    fn fail_recover_emits_up_after_down_inside_the_schedule() {
        let s = FaultSchedule::generate(FaultKind::FailRecover { down_for: 3 }, 8, 10, 5);
        assert_eq!(s.events().len(), 2);
        let (down_t, down) = s.events()[0];
        let (up_t, up) = s.events()[1];
        assert_eq!(down_t, 5);
        assert_eq!(up_t, 8);
        let WorldEvent::ServerDown { server: d } = down else {
            panic!("first event must be the failure");
        };
        let WorldEvent::ServerUp { server: u } = up else {
            panic!("second event must be the recovery");
        };
        assert_eq!(d, u, "the recovering server is the failed one");
        // A down_for longer than the schedule clamps to the last tick.
        let s = FaultSchedule::generate(FaultKind::FailRecover { down_for: 100 }, 8, 10, 5);
        assert_eq!(s.events()[1].0, 9);
    }

    #[test]
    #[should_panic(expected = "survivor")]
    fn single_server_pools_are_rejected() {
        FaultSchedule::generate(FaultKind::Single, 1, 10, 0);
    }
}
