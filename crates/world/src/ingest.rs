//! Bounded SPSC ingest ring: the line-rate front end of the serving
//! path.
//!
//! An [`IngestRing`] is a fixed-capacity single-producer/single-consumer
//! queue of [`WorldEvent`]s, admission-stamped at enqueue. It sits
//! *before* the [`DeltaBuffer`](crate::DeltaBuffer) coalesce-or-shed
//! boundary: a network reader (or a burst replayer) pushes decoded
//! events onto the ring at line rate, and the engine-side pull loop
//! drains it in batches, carrying each event's **enqueue** time into the
//! buffer so arrival-to-commit latency is measured end to end — the
//! queueing delay on the ring is part of the event's latency, not hidden
//! before the measurement starts.
//!
//! The ring is lock-free and allocation-free after construction. Events
//! are packed into per-slot atomics (the crate forbids `unsafe`, so
//! slots are `AtomicU64` fields rather than raw cells); head and tail
//! live on separate cache lines so producer and consumer do not false-
//! share. The SPSC contract is **one** producer thread and **one**
//! consumer thread at a time; the methods take `&self` so the ring can
//! be shared via `Arc`, and ownership of each side is the caller's
//! protocol to keep (the property tests exercise a thread per side).
//!
//! Backpressure composes across the two layers: a full ring refuses
//! events with [`IngestError::RingFull`] (the producer retries or sheds
//! via [`IngestRing::push_or_shed`], counted), and a full `DeltaBuffer`
//! downstream sheds via its own counter — total arrivals = committed +
//! ring-shed + buffer-shed, which the property tests assert.

use crate::stream::WorldEvent;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Pads a hot counter to its own cache line so the producer's tail and
/// the consumer's head never false-share (the vendored crossbeam stub
/// has no `CachePadded`).
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicUsize);

/// One ring slot: a [`WorldEvent`] packed into atomics. `tag` selects
/// the variant, `a`/`b` carry its fields, `stamp` is nanoseconds since
/// the ring's epoch. Slot contents are published by the tail store
/// (release) and observed after the tail load (acquire), so the relaxed
/// field accesses are ordered.
#[derive(Default)]
struct Slot {
    tag: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    stamp: AtomicU64,
}

const TAG_JOIN: u64 = 0;
const TAG_LEAVE: u64 = 1;
const TAG_MOVE: u64 = 2;
const TAG_SERVER_DOWN: u64 = 3;
const TAG_SERVER_UP: u64 = 4;

fn pack(event: &WorldEvent) -> (u64, u64, u64) {
    match *event {
        WorldEvent::Join { node, zone } => (TAG_JOIN, node as u64, zone as u64),
        WorldEvent::Leave { client } => (TAG_LEAVE, client as u64, 0),
        WorldEvent::Move { client, zone } => (TAG_MOVE, client as u64, zone as u64),
        WorldEvent::ServerDown { server } => (TAG_SERVER_DOWN, server as u64, 0),
        WorldEvent::ServerUp { server } => (TAG_SERVER_UP, server as u64, 0),
    }
}

fn unpack(tag: u64, a: u64, b: u64) -> WorldEvent {
    match tag {
        TAG_JOIN => WorldEvent::Join {
            node: a as usize,
            zone: b as usize,
        },
        TAG_LEAVE => WorldEvent::Leave { client: a as usize },
        TAG_MOVE => WorldEvent::Move {
            client: a as usize,
            zone: b as usize,
        },
        TAG_SERVER_DOWN => WorldEvent::ServerDown { server: a as usize },
        TAG_SERVER_UP => WorldEvent::ServerUp { server: a as usize },
        _ => unreachable!("ring slots only ever hold packed events"),
    }
}

/// Why the ring refused an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// Every slot is occupied: the consumer has fallen behind. The
    /// producer must retry after the consumer drains (backpressure) or
    /// shed the event (see [`IngestRing::push_or_shed`]).
    RingFull {
        /// The ring's fixed capacity.
        capacity: usize,
    },
    /// The ring was closed by [`IngestRing::close`]; no more events are
    /// accepted (pending ones still drain).
    Closed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::RingFull { capacity } => {
                write!(f, "ingest ring is full ({capacity} slots)")
            }
            IngestError::Closed => write!(f, "ingest ring is closed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One event popped off the ring, with the [`Instant`] it was admitted
/// (enqueued) — the start of its arrival-to-commit latency clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// The event.
    pub event: WorldEvent,
    /// When the producer enqueued it.
    pub admitted: Instant,
}

/// Bounded single-producer/single-consumer ring of admission-stamped
/// [`WorldEvent`]s — see the module-level docs for the SPSC contract.
pub struct IngestRing {
    slots: Vec<Slot>,
    /// Consumer cursor: slots `[head, tail)` hold pending events.
    head: PaddedCounter,
    /// Producer cursor; the counters run monotonically and are reduced
    /// modulo capacity at the slot access, so `tail - head` is the exact
    /// occupancy with no reserved empty slot.
    tail: PaddedCounter,
    closed: AtomicBool,
    shed: AtomicU64,
    /// Stamps travel as nanoseconds since this epoch (captured at ring
    /// construction) so they fit one atomic word.
    epoch: Instant,
}

impl IngestRing {
    /// Creates a ring with exactly `capacity` usable slots.
    pub fn with_capacity(capacity: usize) -> IngestRing {
        assert!(capacity >= 1, "a zero-slot ring cannot accept anything");
        IngestRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: PaddedCounter::default(),
            tail: PaddedCounter::default(),
            closed: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently queued (enqueued, not yet popped).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks the ring closed: [`IngestRing::try_push`] refuses further
    /// events, the consumer drains what is pending and stops. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`IngestRing::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Lifetime count of events dropped by [`IngestRing::push_or_shed`]
    /// because the ring was full.
    pub fn shed_events(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Enqueues one event, admission-stamped now. Producer side of the
    /// SPSC contract: at most one thread may call the push methods at a
    /// time.
    pub fn try_push(&self, event: WorldEvent) -> Result<(), IngestError> {
        if self.is_closed() {
            return Err(IngestError::Closed);
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail - head >= self.capacity() {
            return Err(IngestError::RingFull {
                capacity: self.capacity(),
            });
        }
        let (tag, a, b) = pack(&event);
        let nanos = Instant::now().duration_since(self.epoch).as_nanos() as u64;
        let slot = &self.slots[tail % self.capacity()];
        slot.tag.store(tag, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(nanos, Ordering::Relaxed);
        // Publish the slot: pairs with the acquire tail load in `pop`.
        self.tail.0.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// [`IngestRing::try_push`] with the shed half of the policy: a full
    /// ring drops the event, counts it in [`IngestRing::shed_events`],
    /// and reports `false`. A closed ring still errors — closure is a
    /// protocol event, not load.
    pub fn push_or_shed(&self, event: WorldEvent) -> Result<bool, IngestError> {
        match self.try_push(event) {
            Ok(()) => Ok(true),
            Err(IngestError::RingFull { .. }) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// [`IngestRing::try_push`] that spins (yielding) on a full ring
    /// until the consumer makes room — backpressure for events that must
    /// never be shed (a Leave, a server fault). Errors only on a closed
    /// ring.
    pub fn push_blocking(&self, event: WorldEvent) -> Result<(), IngestError> {
        loop {
            match self.try_push(event) {
                Err(IngestError::RingFull { .. }) => std::thread::yield_now(),
                other => return other,
            }
        }
    }

    /// Dequeues the oldest pending event, or `None` when the ring is
    /// empty. Consumer side of the SPSC contract: at most one thread may
    /// call `pop` at a time.
    pub fn pop(&self) -> Option<Admitted> {
        let head = self.head.0.load(Ordering::Relaxed);
        // Pairs with the release tail store in `try_push`.
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.slots[head % self.capacity()];
        let tag = slot.tag.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        let nanos = slot.stamp.load(Ordering::Relaxed);
        // Free the slot for the producer.
        self.head.0.store(head + 1, Ordering::Release);
        Some(Admitted {
            event: unpack(tag, a, b),
            admitted: self.epoch + Duration::from_nanos(nanos),
        })
    }
}

impl std::fmt::Debug for IngestRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .field("shed", &self.shed_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_stamps_survive_the_ring() {
        let ring = IngestRing::with_capacity(8);
        let before = Instant::now();
        ring.try_push(WorldEvent::Join { node: 3, zone: 7 })
            .unwrap();
        ring.try_push(WorldEvent::Leave { client: 42 }).unwrap();
        ring.try_push(WorldEvent::Move {
            client: 9,
            zone: 1_000_000,
        })
        .unwrap();
        assert_eq!(ring.len(), 3);
        let first = ring.pop().unwrap();
        assert_eq!(first.event, WorldEvent::Join { node: 3, zone: 7 });
        assert!(first.admitted >= before);
        assert!(first.admitted <= Instant::now());
        assert_eq!(ring.pop().unwrap().event, WorldEvent::Leave { client: 42 });
        assert_eq!(
            ring.pop().unwrap().event,
            WorldEvent::Move {
                client: 9,
                zone: 1_000_000
            }
        );
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_backpressures_then_sheds_counted() {
        let ring = IngestRing::with_capacity(2);
        ring.try_push(WorldEvent::Leave { client: 0 }).unwrap();
        ring.try_push(WorldEvent::Leave { client: 1 }).unwrap();
        assert_eq!(
            ring.try_push(WorldEvent::Leave { client: 2 }),
            Err(IngestError::RingFull { capacity: 2 })
        );
        assert_eq!(
            ring.push_or_shed(WorldEvent::Leave { client: 2 }),
            Ok(false)
        );
        assert_eq!(ring.shed_events(), 1);
        // Draining one slot makes room again (wraparound works).
        assert_eq!(ring.pop().unwrap().event, WorldEvent::Leave { client: 0 });
        assert_eq!(ring.push_or_shed(WorldEvent::Leave { client: 2 }), Ok(true));
        assert_eq!(ring.shed_events(), 1);
        assert_eq!(ring.pop().unwrap().event, WorldEvent::Leave { client: 1 });
        assert_eq!(ring.pop().unwrap().event, WorldEvent::Leave { client: 2 });
    }

    #[test]
    fn close_refuses_pushes_but_drains_pending() {
        let ring = IngestRing::with_capacity(4);
        ring.try_push(WorldEvent::ServerDown { server: 5 }).unwrap();
        ring.close();
        assert!(ring.is_closed());
        assert_eq!(
            ring.try_push(WorldEvent::Leave { client: 0 }),
            Err(IngestError::Closed)
        );
        assert_eq!(
            ring.push_blocking(WorldEvent::Leave { client: 0 }),
            Err(IngestError::Closed)
        );
        assert_eq!(
            ring.pop().unwrap().event,
            WorldEvent::ServerDown { server: 5 }
        );
        assert!(ring.pop().is_none());
    }

    #[test]
    fn server_events_round_trip() {
        let ring = IngestRing::with_capacity(2);
        ring.try_push(WorldEvent::ServerUp { server: 77 }).unwrap();
        assert_eq!(
            ring.pop().unwrap().event,
            WorldEvent::ServerUp { server: 77 }
        );
    }
}
