//! # dve-world — DVE workload substrate
//!
//! Everything the paper's simulation needs to *describe* a distributed
//! virtual environment, independent of the assignment algorithms:
//!
//! * [`ScenarioConfig`] — scenario parameters, including the paper's
//!   compact `"20s-80z-1000c-500cp"` notation and the Table 1 config set;
//! * [`World`] — a populated scenario: servers on topology nodes with
//!   capacities, clients with physical nodes and virtual zones;
//! * [`DistributionType`] — the PW/VW clustering taxonomy of Table 2;
//! * [`CorrelationModel`] — the physical/virtual correlation `delta` model;
//! * [`BandwidthModel`] — the quadratic zone-bandwidth model of \[20\]
//!   (25 msg/s x 100 B defaults);
//! * [`ErrorModel`] — King/IDMaps-style delay estimation error (Table 4);
//! * [`apply_dynamics`] — join/leave/move population dynamics (Table 3);
//! * [`WorldEvent`] / [`DeltaBuffer`] — the same dynamics as a continuous
//!   event stream, coalesced into batch-shaped deltas for the serving
//!   engine in `dve-sim`; the buffer optionally carries a capacity bound
//!   with a coalesce-or-shed overload policy and admission timestamps;
//! * [`FaultSchedule`] — deterministic seeded server failure/recovery
//!   schedules ([`WorldEvent::ServerDown`]/[`WorldEvent::ServerUp`]) for
//!   the robustness scenarios: single failure, correlated multi-failure,
//!   fail-then-recover;
//! * [`WorldDelays`] — the delay handle of the pipeline: a shared
//!   [`DelaySource`] plus the gathered node→server RTT table, replacing
//!   the dense node×node `DelayMatrix` everywhere downstream
//!   (O(nodes × servers) instead of O(nodes²) or O(clients × servers));
//! * [`IngestRing`] — bounded SPSC ring in front of the [`DeltaBuffer`]:
//!   the line-rate ingest seam, admission-stamping events at enqueue so
//!   latency is arrival-to-commit end to end;
//! * [`wire`] — the length-prefixed wire protocol `dvecap serve` speaks
//!   (see below).
//!
//! ## Wire protocol
//!
//! Remote producers stream events as length-prefixed frames, integers
//! little-endian:
//!
//! ```text
//! [u32 length][u8 opcode][u64 fields...]
//! ```
//!
//! `length` counts the opcode plus the payload (not itself). Opcodes:
//! `0x01` Join(node, zone), `0x02` Leave(client), `0x03` Move(client,
//! zone), `0x04` ServerDown(server), `0x05` ServerUp(server) — so Join
//! and Move frames are 17 body bytes, the rest 9. On the wire `client`
//! is a *stable* client id (the serving engine's id discipline), not a
//! base-world index; the engine-side pull loop owns the translation. A
//! length prefix past [`wire::MAX_FRAME`] is refused outright. See
//! [`wire`] for the encoder and the incremental [`wire::FrameReader`],
//! and `docs/WIRE.md` at the repository root for the standalone spec
//! with a worked `dvecap serve` transcript.
//!
//! ## Ingest invariants
//!
//! The ring and the buffer are the two backpressure layers in front of
//! the serving engine, and they hold distinct contracts:
//!
//! * **[`IngestRing`] is strictly SPSC and never blocks.** One producer
//!   (`try_push`), one consumer (`pop`); a full ring *refuses* —
//!   the producer decides whether to retry or shed, and every refusal
//!   is counted on the ring. Events are admission-stamped at enqueue,
//!   so downstream latency accounting covers time spent queued.
//! * **[`DeltaBuffer`] coalesces per client and sheds at its bound —
//!   except Leaves.** A bounded buffer refuses *new entries* past the
//!   bound (joins, first-touch moves), but a departure strictly frees
//!   capacity everywhere downstream, so a Leave is admitted past any
//!   bound, unconditionally. **Never shed a Leave**: a shed Leave
//!   would leave a phantom client holding server capacity forever.
//!   The burst bench and the ingest tests gate `shed_leaves == 0`.
//! * **Coalescing preserves batch semantics.** Draining the buffer
//!   yields the same [`WorldDelta`] a batch [`apply_dynamics`] step
//!   would produce for the net effect of the window (move-then-back
//!   windows vanish as no-ops), which is what keeps the streaming
//!   path bit-compatible with the batch carry.
//!
//! ```
//! use dve_world::{ScenarioConfig, World};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let config = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
//! let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
//! let world = World::generate(&config, 100, &labels, &mut rng).unwrap();
//! assert_eq!(world.clients.len(), 200);
//! assert_eq!(world.zone_populations().iter().sum::<usize>(), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod bandwidth;
mod correlation;
mod delays;
mod distribution;
mod dynamics;
mod error;
mod fault;
mod ingest;
mod mobility;
mod scenario;
mod stream;
pub mod wire;
mod world;

pub use arrival::InterArrival;
pub use bandwidth::BandwidthModel;
pub use correlation::CorrelationModel;
pub use delays::WorldDelays;
pub use distribution::{hot_weights, zipf_weights, DistributionType, WeightedIndex};
pub use dve_topology::{DelaySource, OnDemandDelays};
pub use dynamics::{
    apply_dynamics, ClientJoin, ClientLeave, DynamicsBatch, DynamicsOutcome, WorldDelta, ZoneMove,
};
pub use error::ErrorModel;
pub use fault::{FaultKind, FaultSchedule};
pub use ingest::{Admitted, IngestError, IngestRing};
pub use mobility::{MobilityModel, ZoneGrid};
pub use scenario::{CapacityPolicy, NotationError, ScenarioConfig};
pub use stream::{DeltaBuffer, DrainDelta, FlushAdmissions, StreamError, WorldEvent};
pub use world::{Client, Server, World, WorldError};
