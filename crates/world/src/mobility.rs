//! Avatar mobility between adjacent zones (extension beyond the paper).
//!
//! The paper's Table 3 teleports movers to uniformly random zones. Real
//! DVE avatars walk: they cross into *adjacent* zones of the virtual
//! world. This module lays the zones out on a wrap-around grid (the
//! standard MMOG zoning scheme) and moves avatars to random neighbours,
//! giving churn experiments a spatially correlated alternative to the
//! paper's uniform moves.

use crate::arrival::InterArrival;
use crate::stream::WorldEvent;
use crate::world::World;
use rand::Rng;

/// A wrap-around (toroidal) rectangular grid of zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneGrid {
    width: usize,
    height: usize,
}

impl ZoneGrid {
    /// Creates a `width x height` grid; both sides must be positive.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid sides must be positive");
        ZoneGrid { width, height }
    }

    /// Builds the most-square grid covering at least `zones` cells (extra
    /// cells are simply unused zone ids >= `zones` and never returned by
    /// [`ZoneGrid::neighbors_clamped`]).
    pub fn covering(zones: usize) -> Self {
        assert!(zones > 0, "need at least one zone");
        let width = (zones as f64).sqrt().ceil() as usize;
        let height = zones.div_ceil(width);
        ZoneGrid { width, height }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total cells (may exceed the world's zone count for `covering`).
    pub fn cells(&self) -> usize {
        self.width * self.height
    }

    /// The four toroidal neighbours of `zone` (fewer when the grid side
    /// is 1, since duplicates collapse).
    pub fn neighbors(&self, zone: usize) -> Vec<usize> {
        assert!(zone < self.cells(), "zone {zone} outside grid");
        let (x, y) = (zone % self.width, zone / self.width);
        let mut out = Vec::with_capacity(4);
        let left = (x + self.width - 1) % self.width + y * self.width;
        let right = (x + 1) % self.width + y * self.width;
        let up = x + ((y + self.height - 1) % self.height) * self.width;
        let down = x + ((y + 1) % self.height) * self.width;
        for n in [left, right, up, down] {
            if n != zone && !out.contains(&n) {
                out.push(n);
            }
        }
        out
    }

    /// Neighbours restricted to ids below `zones` (for worlds whose zone
    /// count is not a perfect grid).
    pub fn neighbors_clamped(&self, zone: usize, zones: usize) -> Vec<usize> {
        self.neighbors(zone)
            .into_iter()
            .filter(|&z| z < zones)
            .collect()
    }
}

/// Per-tick avatar mobility: each client crosses to a random adjacent
/// zone with probability `move_prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityModel {
    /// Probability a client changes zone each tick.
    pub move_prob: f64,
    /// Zone adjacency.
    pub grid: ZoneGrid,
}

impl MobilityModel {
    /// Creates a model over a grid covering the given zone count.
    pub fn new(zones: usize, move_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&move_prob), "move_prob outside [0,1]");
        MobilityModel {
            move_prob,
            grid: ZoneGrid::covering(zones),
        }
    }

    /// Draws one tick's moves as a [`WorldEvent`] stream against `world`
    /// **without mutating it** — the generator that drives the streaming
    /// serving engine from mobility instead of Table 3 batch traces.
    ///
    /// Event client fields are indices into `world.clients` (the base
    /// world of the tick), so the stream feeds a
    /// [`DeltaBuffer`](crate::DeltaBuffer) bound to that world directly.
    /// The RNG discipline is identical to [`MobilityModel::tick`]: one
    /// uniform draw per client, plus one neighbour draw per mover, in
    /// client order — ticking a world and replaying the same seed's
    /// events through a buffer produce the same populations bit for bit.
    pub fn events<R: Rng + ?Sized>(&self, world: &World, rng: &mut R) -> Vec<WorldEvent> {
        let zones = world.zones;
        let mut events = Vec::new();
        for (i, client) in world.clients.iter().enumerate() {
            if rng.gen::<f64>() >= self.move_prob {
                continue;
            }
            let neighbors = self.grid.neighbors_clamped(client.zone, zones);
            if neighbors.is_empty() {
                continue;
            }
            events.push(WorldEvent::Move {
                client: i,
                zone: neighbors[rng.gen_range(0..neighbors.len())],
            });
        }
        events
    }

    /// [`MobilityModel::events`] with wall-clock arrival offsets: each
    /// event is stamped with its arrival time **within the tick**,
    /// starting at the tick boundary (time 0) and advancing by one
    /// [`InterArrival`] gap per event, in event order.
    ///
    /// The move draws happen first, with exactly the RNG discipline of
    /// [`MobilityModel::events`] (the fixed-seed pins hold); the gap
    /// draws follow as a separate suffix of the stream, so
    /// [`InterArrival::AtTick`] — which draws nothing — makes this
    /// byte-identical to `events` zipped with zeros. Offsets may exceed
    /// 1.0: a burst longer than the tick simply spills into the next
    /// one, exactly as a real arrival process would.
    pub fn timed_events<R: Rng + ?Sized>(
        &self,
        world: &World,
        arrival: InterArrival,
        rng: &mut R,
    ) -> Vec<(f64, WorldEvent)> {
        let events = self.events(world, rng);
        let mut at = 0.0f64;
        events
            .into_iter()
            .map(|event| {
                at += arrival.sample_gap(rng);
                (at, event)
            })
            .collect()
    }

    /// Advances the world one tick in place; returns the indices of
    /// clients that moved. Defined as [`MobilityModel::events`] applied
    /// to the world, so the two paths can never drift.
    pub fn tick<R: Rng + ?Sized>(&self, world: &mut World, rng: &mut R) -> Vec<usize> {
        self.events(world, rng)
            .into_iter()
            .map(|event| match event {
                WorldEvent::Move { client, zone } => {
                    world.clients[client].zone = zone;
                    client
                }
                _ => unreachable!("mobility emits only moves"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_neighbors_wrap() {
        let g = ZoneGrid::new(4, 3);
        // corner cell 0 = (0,0): left wraps to 3, up wraps to 8.
        let n = g.neighbors(0);
        assert!(n.contains(&3));
        assert!(n.contains(&1));
        assert!(n.contains(&8));
        assert!(n.contains(&4));
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn degenerate_grids_collapse_duplicates() {
        let g = ZoneGrid::new(1, 1);
        assert!(g.neighbors(0).is_empty());
        let g = ZoneGrid::new(2, 1);
        assert_eq!(g.neighbors(0), vec![1]);
    }

    #[test]
    fn covering_grid_spans_zone_count() {
        for zones in [1usize, 2, 5, 80, 81, 160] {
            let g = ZoneGrid::covering(zones);
            assert!(g.cells() >= zones, "zones={zones}");
            assert!(g.cells() < zones + g.width() + g.height());
        }
    }

    #[test]
    fn neighbors_clamped_respects_world_size() {
        // 5 zones on a 3x2 grid: ids 5 is a phantom cell.
        let g = ZoneGrid::covering(5);
        for z in 0..5 {
            for n in g.neighbors_clamped(z, 5) {
                assert!(n < 5);
            }
        }
    }

    #[test]
    fn mobility_moves_expected_fraction_to_adjacent_zones() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ScenarioConfig::from_notation("5s-16z-400c-100cp").unwrap();
        let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
        let mut world = crate::world::World::generate(&config, 100, &labels, &mut rng).unwrap();
        let before = world.clients.clone();
        let model = MobilityModel::new(16, 0.25);
        let moved = model.tick(&mut world, &mut rng);
        let frac = moved.len() as f64 / 400.0;
        assert!((0.15..0.35).contains(&frac), "moved fraction {frac}");
        for &i in &moved {
            let old = before[i].zone;
            let new = world.clients[i].zone;
            assert_ne!(old, new);
            assert!(
                model.grid.neighbors_clamped(old, 16).contains(&new),
                "client {i} jumped {old}->{new} non-adjacently"
            );
        }
        // Non-movers untouched.
        for i in 0..400 {
            if !moved.contains(&i) {
                assert_eq!(before[i], world.clients[i]);
            }
        }
    }

    /// Fixed-seed pin of the generator satellite: a mobility tick's
    /// event stream, routed through a [`DeltaBuffer`], reproduces the
    /// directly ticked world bit for bit (and the buffer's delta lists
    /// exactly the effective movers).
    #[test]
    fn event_stream_round_trips_through_delta_buffer() {
        use crate::stream::DeltaBuffer;

        let config = ScenarioConfig::from_notation("5s-16z-400c-100cp").unwrap();
        let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
        let model = MobilityModel::new(16, 0.3);
        for seed in [11u64, 12, 13] {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = crate::world::World::generate(&config, 100, &labels, &mut rng).unwrap();

            // Path A: draw the event stream (same RNG state as a tick).
            let mut events_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let events = model.events(&base, &mut events_rng);

            // Path B: tick a clone directly with the same draw sequence.
            let mut ticked = base.clone();
            let mut tick_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let moved = model.tick(&mut ticked, &mut tick_rng);
            assert_eq!(events.len(), moved.len());

            // The stream through the coalescer reaches the same world.
            let mut buffer = DeltaBuffer::new(&base);
            for &event in &events {
                buffer.push(event).unwrap();
            }
            let outcome = buffer.flush(&base);
            assert_eq!(outcome.world.clients, ticked.clients, "seed {seed}");
            assert!(outcome.delta.joins.is_empty());
            assert!(outcome.delta.leaves.is_empty());
            // Effective moves only: every delta move names a client whose
            // zone actually changed, and all zone changes are covered.
            let changed: Vec<usize> = (0..400)
                .filter(|&c| base.clients[c].zone != ticked.clients[c].zone)
                .collect();
            let mut delta_movers: Vec<usize> =
                outcome.delta.moves.iter().map(|m| m.old_index).collect();
            delta_movers.sort_unstable();
            assert_eq!(delta_movers, changed, "seed {seed}");
        }
    }

    /// Fixed-seed pin of the arrival-time satellite: the timed stream's
    /// *events* are exactly `events()`'s (the gap draws are a strict
    /// suffix of the RNG stream), `AtTick` stamps zeros without touching
    /// the RNG, and the exponential schedule is reproducible bit for bit.
    #[test]
    fn timed_events_pin_schedule_at_fixed_seed() {
        let config = ScenarioConfig::from_notation("5s-16z-400c-100cp").unwrap();
        let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
        let mut rng = StdRng::seed_from_u64(31);
        let world = crate::world::World::generate(&config, 100, &labels, &mut rng).unwrap();
        let model = MobilityModel::new(16, 0.25);
        let arrival = crate::InterArrival::Exponential {
            mean_gap_ticks: 0.01,
        };

        let mut rng_a = StdRng::seed_from_u64(0xabc1);
        let plain = model.events(&world, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(0xabc1);
        let timed = model.timed_events(&world, arrival, &mut rng_b);
        assert_eq!(timed.len(), plain.len());
        let stamped: Vec<WorldEvent> = timed.iter().map(|&(_, e)| e).collect();
        assert_eq!(stamped, plain, "gap draws must not disturb the moves");
        // Arrival times are strictly increasing (exponential gaps are
        // almost surely positive) and start after the tick boundary.
        for w in timed.windows(2) {
            assert!(w[0].0 < w[1].0, "schedule must be increasing");
        }
        assert!(timed.first().unwrap().0 > 0.0);

        // Bit-reproducible schedule at the same seed.
        let mut rng_c = StdRng::seed_from_u64(0xabc1);
        assert_eq!(model.timed_events(&world, arrival, &mut rng_c), timed);

        // AtTick: all zeros, RNG untouched beyond the move draws.
        let mut rng_d = StdRng::seed_from_u64(0xabc1);
        let at_tick = model.timed_events(&world, crate::InterArrival::AtTick, &mut rng_d);
        assert!(at_tick.iter().all(|&(t, _)| t == 0.0));
        assert_eq!(rng_d.gen::<u64>(), rng_a.gen::<u64>());
    }

    #[test]
    fn zero_probability_never_moves() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = ScenarioConfig::from_notation("5s-16z-100c-100cp").unwrap();
        let labels: Vec<u16> = (0..50).map(|n| (n % 5) as u16).collect();
        let mut world = crate::world::World::generate(&config, 50, &labels, &mut rng).unwrap();
        let before = world.clients.clone();
        let moved = MobilityModel::new(16, 0.0).tick(&mut world, &mut rng);
        assert!(moved.is_empty());
        assert_eq!(before, world.clients);
    }
}
