//! Scenario configuration, including the paper's compact DVE notation
//! `"<m>s-<n>z-<k>c-<cap>cp"` (servers, zones, clients, total capacity in
//! Mbps), e.g. `20s-80z-1000c-500cp` for the default configuration.

use crate::bandwidth::BandwidthModel;
use crate::distribution::DistributionType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How total capacity is split across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapacityPolicy {
    /// Every server receives `total / m` (the minimum is checked).
    Uniform,
    /// Random split: every server gets the minimum, the remainder is
    /// distributed with random proportions.
    RandomHeterogeneous,
}

/// Full description of a DVE scenario to instantiate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of geographically distributed servers (paper default: 20).
    pub servers: usize,
    /// Number of virtual-world zones (default: 80).
    pub zones: usize,
    /// Number of clients (default: 1000).
    pub clients: usize,
    /// Total system capacity in bits per second (default: 500 Mbps).
    pub total_capacity_bps: f64,
    /// Minimum per-server capacity in bits per second (default: 10 Mbps).
    pub min_capacity_bps: f64,
    /// Capacity split policy.
    pub capacity_policy: CapacityPolicy,
    /// Physical/virtual world correlation `delta` in [0, 1] (default 0.5).
    pub correlation: f64,
    /// Client distribution type (Table 2 of the paper).
    pub distribution: DistributionType,
    /// Number of "hot" zones when the virtual world is clustered.
    pub hot_zones: usize,
    /// Population weight multiplier of a hot zone (paper: 10x).
    pub hot_zone_factor: f64,
    /// Number of "hot" physical nodes when the physical world is clustered.
    pub hot_nodes: usize,
    /// Weight multiplier of a hot physical node (10x).
    pub hot_node_factor: f64,
    /// Message-rate model for bandwidth estimation.
    pub bandwidth: BandwidthModel,
}

impl Default for ScenarioConfig {
    /// The paper's default scenario: `20s-80z-1000c-500cp`, delta = 0.5,
    /// uniform distributions.
    fn default() -> Self {
        ScenarioConfig {
            servers: 20,
            zones: 80,
            clients: 1000,
            total_capacity_bps: 500e6,
            min_capacity_bps: 10e6,
            capacity_policy: CapacityPolicy::Uniform,
            correlation: 0.5,
            distribution: DistributionType::Uniform,
            hot_zones: 1,
            hot_zone_factor: 10.0,
            hot_nodes: 5,
            hot_node_factor: 10.0,
            bandwidth: BandwidthModel::default(),
        }
    }
}

/// Error from parsing the compact scenario notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotationError(pub String);

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad scenario notation: {}", self.0)
    }
}

impl std::error::Error for NotationError {}

impl ScenarioConfig {
    /// Builds a config from the paper's notation (`"20s-80z-1000c-500cp"`),
    /// keeping every other knob at its default.
    pub fn from_notation(s: &str) -> Result<Self, NotationError> {
        let parts: Vec<&str> = s.trim().split('-').collect();
        if parts.len() != 4 {
            return Err(NotationError(format!(
                "expected 4 dash-separated fields, got {} in {s:?}",
                parts.len()
            )));
        }
        fn field(part: &str, suffix: &str) -> Result<usize, NotationError> {
            let digits = part
                .strip_suffix(suffix)
                .ok_or_else(|| NotationError(format!("field {part:?} must end with {suffix:?}")))?;
            digits
                .parse::<usize>()
                .map_err(|e| NotationError(format!("field {part:?}: {e}")))
        }
        let servers = field(parts[0], "s")?;
        let zones = field(parts[1], "z")?;
        let clients = field(parts[2], "c")?;
        let cap_mbps = field(parts[3], "cp")?;
        if servers == 0 || zones == 0 {
            return Err(NotationError("servers and zones must be positive".into()));
        }
        Ok(ScenarioConfig {
            servers,
            zones,
            clients,
            total_capacity_bps: cap_mbps as f64 * 1e6,
            ..Default::default()
        })
    }

    /// Renders the compact notation of this config.
    pub fn notation(&self) -> String {
        format!(
            "{}s-{}z-{}c-{}cp",
            self.servers,
            self.zones,
            self.clients,
            (self.total_capacity_bps / 1e6).round() as u64
        )
    }

    /// Validates parameter ranges and capacity consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers == 0 {
            return Err("need at least one server".into());
        }
        if self.zones == 0 {
            return Err("need at least one zone".into());
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err(format!("correlation {} outside [0,1]", self.correlation));
        }
        if self.total_capacity_bps <= 0.0 || !self.total_capacity_bps.is_finite() {
            return Err("total capacity must be positive".into());
        }
        if self.min_capacity_bps < 0.0 {
            return Err("min capacity must be non-negative".into());
        }
        if self.min_capacity_bps * self.servers as f64 > self.total_capacity_bps + 1e-9 {
            return Err(format!(
                "minimum capacity x servers ({}) exceeds total capacity ({})",
                self.min_capacity_bps * self.servers as f64,
                self.total_capacity_bps
            ));
        }
        if self.hot_zone_factor < 1.0 || self.hot_node_factor < 1.0 {
            return Err("hot factors must be >= 1".into());
        }
        Ok(())
    }

    /// The four DVE configurations of Table 1, smallest to largest.
    pub fn table1_configs() -> Vec<ScenarioConfig> {
        [
            "5s-15z-200c-100cp",
            "10s-30z-400c-200cp",
            "20s-80z-1000c-500cp",
            "30s-160z-2000c-1000cp",
        ]
        .iter()
        .map(|s| ScenarioConfig::from_notation(s).expect("static notation"))
        .collect()
    }
}

impl FromStr for ScenarioConfig {
    type Err = NotationError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioConfig::from_notation(s)
    }
}

impl fmt::Display for ScenarioConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_notation() {
        let c = ScenarioConfig::from_notation("20s-80z-1000c-500cp").unwrap();
        assert_eq!(c.servers, 20);
        assert_eq!(c.zones, 80);
        assert_eq!(c.clients, 1000);
        assert!((c.total_capacity_bps - 500e6).abs() < 1.0);
        assert_eq!(c.notation(), "20s-80z-1000c-500cp");
    }

    #[test]
    fn notation_round_trips() {
        for s in ["5s-15z-200c-100cp", "30s-160z-2000c-1000cp"] {
            assert_eq!(ScenarioConfig::from_notation(s).unwrap().notation(), s);
        }
    }

    #[test]
    fn rejects_malformed_notation() {
        assert!(ScenarioConfig::from_notation("20s-80z-1000c").is_err());
        assert!(ScenarioConfig::from_notation("20x-80z-1000c-500cp").is_err());
        assert!(ScenarioConfig::from_notation("s-80z-1000c-500cp").is_err());
        assert!(ScenarioConfig::from_notation("0s-80z-1000c-500cp").is_err());
    }

    #[test]
    fn default_is_the_paper_default_and_valid() {
        let c = ScenarioConfig::default();
        assert_eq!(c.notation(), "20s-80z-1000c-500cp");
        assert!(c.validate().is_ok());
        assert_eq!(c.correlation, 0.5);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = ScenarioConfig::default();
        c.correlation = 1.5;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::default();
        c.min_capacity_bps = 100e6; // 20 * 100M > 500M
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::default();
        c.hot_zone_factor = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn table1_configs_match_paper() {
        let configs = ScenarioConfig::table1_configs();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].notation(), "5s-15z-200c-100cp");
        assert_eq!(configs[3].clients, 2000);
    }

    #[test]
    fn fromstr_works() {
        let c: ScenarioConfig = "10s-30z-400c-200cp".parse().unwrap();
        assert_eq!(c.servers, 10);
        assert_eq!(format!("{c}"), "10s-30z-400c-200cp");
    }
}
