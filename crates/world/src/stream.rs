//! Single-event churn emission and coalescing for the streaming serving
//! path.
//!
//! The Table 3 protocol models churn as per-epoch batches, but a live DVE
//! sees joins, leaves, and zone moves as a continuous *event stream*. This
//! module provides the event vocabulary and the bridge back to the batch
//! world:
//!
//! * [`WorldEvent`] — one join, leave, or move, expressed against a fixed
//!   base world (the world at the last flush);
//! * [`DeltaBuffer`] — a coalescer that accumulates events and, on
//!   [`DeltaBuffer::flush`], applies them to the base world in one step,
//!   producing a [`DynamicsOutcome`] with exactly the shape
//!   [`apply_dynamics`](crate::apply_dynamics) produces (survivors keep
//!   their relative order, joiners are appended in arrival order), so
//!   every delta-aware consumer — `CapInstance::apply_delta`,
//!   `CostMatrix::retire_departures`/`admit_arrivals` — works unchanged on
//!   streamed input;
//! * [`DynamicsOutcome::to_events`] — the inverse direction: decompose a
//!   batch outcome into the event sequence that reproduces it, which is
//!   what lets the stream engine replay *the same events* as a batch run
//!   for the equivalence property tests.
//!
//! Coalescing rules (per base-world client, within one buffer window): a
//! move followed by another move keeps the last destination; a move
//! followed by a leave collapses to a leave from the *base* zone (the
//! buffered move never happened); any event after a leave is rejected —
//! the client is gone. A move whose final destination equals the client's
//! base zone is dropped at flush (it is not an effective event).
//!
//! Admission timestamps are keyed to **entries**, not arrivals
//! (first-arrival wins, per the UQP model): the stamp of a coalesced
//! entry is the arrival time of the event that *created* it, and
//! [`DeltaBuffer::flush_with_admissions`] returns stamps aligned
//! one-to-one with the committed delta — entries that turn out
//! ineffective at flush (a move back to the base zone) surrender their
//! stamp and are counted instead, so stamp counts always match committed
//! event counts.

use crate::dynamics::{ClientJoin, ClientLeave, DynamicsOutcome, WorldDelta, ZoneMove};
use crate::world::{Client, World};
use std::time::Instant;

/// One churn event against a base world: the world state at the time the
/// owning [`DeltaBuffer`] was created or last flushed. `client` fields
/// are indices into that base world's client vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldEvent {
    /// A new client appears on topology node `node` in zone `zone`.
    Join {
        /// Topology node the client connects from.
        node: usize,
        /// Zone the client's avatar starts in.
        zone: usize,
    },
    /// Base-world client `client` disconnects.
    Leave {
        /// Index of the leaver in the base world.
        client: usize,
    },
    /// Base-world client `client` moves its avatar to `zone`.
    Move {
        /// Index of the mover in the base world.
        client: usize,
        /// Destination zone.
        zone: usize,
    },
    /// Server `server` fails: its capacity leaves the system and every
    /// zone and relay it carries must be evacuated. Fault events are
    /// *infrastructure* events — they address the serving layer, not the
    /// client population, so a [`DeltaBuffer`] (which coalesces client
    /// churn into batch deltas) rejects them; the serving engine in
    /// `dve-sim` applies them immediately through its mass-evacuation
    /// path instead.
    ServerDown {
        /// The failing server.
        server: usize,
    },
    /// Server `server` recovers: its capacity re-enters the system and
    /// the serving layer may rebalance back onto it. Same routing rule
    /// as [`WorldEvent::ServerDown`].
    ServerUp {
        /// The recovering server.
        server: usize,
    },
}

/// Why a [`DeltaBuffer`] rejected an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The event names a client index outside the base world.
    ClientOutOfRange {
        /// Offending index.
        client: usize,
        /// Base-world population.
        clients: usize,
    },
    /// The event names a zone outside the world.
    ZoneOutOfRange {
        /// Offending zone.
        zone: usize,
        /// Zone count.
        zones: usize,
    },
    /// The client already has a buffered leave; it cannot act again.
    AlreadyLeft {
        /// The departed client.
        client: usize,
    },
    /// The buffer is at its capacity bound and the event would create a
    /// new entry (coalescing updates of already-buffered clients are
    /// always admitted, and so are [`WorldEvent::Leave`]s — a departure
    /// strictly frees capacity at flush, so shedding one would leave a
    /// phantom client on the books forever). Backpressure: the producer
    /// must retry after a flush, or shed the event (see
    /// [`DeltaBuffer::push_or_shed`]).
    QueueFull {
        /// The configured bound that was hit.
        bound: usize,
    },
    /// Fault events ([`WorldEvent::ServerDown`]/[`WorldEvent::ServerUp`])
    /// address the serving layer, not the client population: they cannot
    /// be coalesced into a batch delta and must be routed to the engine
    /// directly.
    ServerEvent {
        /// The server the rejected event named.
        server: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::ClientOutOfRange { client, clients } => {
                write!(f, "client {client} out of range (base world has {clients})")
            }
            StreamError::ZoneOutOfRange { zone, zones } => {
                write!(f, "zone {zone} out of range (world has {zones})")
            }
            StreamError::AlreadyLeft { client } => {
                write!(
                    f,
                    "client {client} has a buffered leave and cannot act again"
                )
            }
            StreamError::QueueFull { bound } => {
                write!(f, "delta buffer is at its bound of {bound} entries")
            }
            StreamError::ServerEvent { server } => {
                write!(
                    f,
                    "server fault event (server {server}) cannot be buffered as client churn"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Buffered fate of one base-world client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingOp {
    None,
    Leave,
    Move(usize),
}

/// Coalesces a stream of [`WorldEvent`]s into one batch-shaped
/// [`DynamicsOutcome`] per [`DeltaBuffer::flush`].
///
/// The buffer is bound to a base world by population and zone count;
/// [`DeltaBuffer::flush`] rebases it onto the world it just produced, so
/// one buffer serves an arbitrarily long stream of flush windows. Events
/// accepted after a flush must use the *new* world's client indices (the
/// outcome's `carried_from` is the translation table).
#[derive(Debug, Clone)]
pub struct DeltaBuffer {
    base_clients: usize,
    zones: usize,
    /// Dense per-base-client fate; only entries listed in `touched` are
    /// ever non-`None`, so a flush resets in O(touched), not O(k).
    ops: Vec<PendingOp>,
    /// Dense per-base-client admission stamp, meaningful only while the
    /// client is in `touched`: the arrival time of the event that
    /// *created* the entry (first-arrival wins; coalescing updates keep
    /// it).
    stamps: Vec<Instant>,
    touched: Vec<usize>,
    /// Pending joiners, in arrival order: (topology node, zone,
    /// admission stamp).
    joins: Vec<(usize, usize, Instant)>,
    events: usize,
    /// Capacity bound on *entries* (touched clients + pending joins).
    /// `None` = unbounded (the historical behavior). When the bound is
    /// hit, events that would create a new entry are refused with
    /// [`StreamError::QueueFull`]; coalescing updates of
    /// already-buffered clients are always admitted, and so are leaves
    /// (see [`StreamError::QueueFull`]) — the coalesce-or-shed policy of
    /// the ingest boundary.
    bound: Option<usize>,
    /// Earliest admission stamp among the pending entries — the
    /// staleness clock of the ingest pull loop. Cleared at flush.
    oldest: Option<Instant>,
    shed: u64,
    coalesced: u64,
    ineffective: u64,
}

/// Admission stamps of one flush window, keyed to the committed delta
/// (see [`DeltaBuffer::flush_with_admissions`]): `leaves`/`moves`/`joins`
/// align index-for-index with the outcome's
/// [`WorldDelta`](crate::WorldDelta) vectors, so every committed event
/// has exactly one stamp — arrival-to-commit latency is
/// `commit_time - stamp`. Entries dropped at flush as ineffective (a
/// move whose final destination equals the base zone) surrender their
/// stamp into `ineffective` instead of producing a phantom sample.
#[derive(Debug, Clone, Default)]
pub struct FlushAdmissions {
    /// One stamp per committed leave, aligned with `delta.leaves`.
    pub leaves: Vec<Instant>,
    /// One stamp per committed (effective) move, aligned with
    /// `delta.moves`.
    pub moves: Vec<Instant>,
    /// One stamp per committed join, aligned with `delta.joins`.
    pub joins: Vec<Instant>,
    /// Entries whose coalesced result was a no-op at flush; their stamps
    /// are discarded, not reported, so sample counts match event counts.
    pub ineffective: u64,
}

/// The committed window of a [`DeltaBuffer::drain_in_place`]: the same
/// events a [`flush`](DeltaBuffer::flush) would report, but expressed
/// against **pre-drain** indices and without materialising a new
/// [`World`]. The mirror world is updated in place instead — moves
/// rewrite zones, leaves `swap_remove` their slot (descending order, so
/// earlier indices stay valid), joins append — which makes the drain
/// O(touched entries), not O(population). Consumers that mirror the
/// index space (the engine-side pull loop's id tables) must replay the
/// same `swap_remove`s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainDelta {
    /// Pre-drain indices of departing clients, ascending.
    pub leaves: Vec<usize>,
    /// `(pre-drain index, destination zone)` of each effective move,
    /// ascending by index.
    pub moves: Vec<(usize, usize)>,
    /// `(node, zone)` of each join, in arrival order; joiners occupy
    /// the tail of the post-drain world.
    pub joins: Vec<(usize, usize)>,
}

impl DeltaBuffer {
    /// Creates an empty, unbounded buffer based on `world`.
    pub fn new(world: &World) -> DeltaBuffer {
        let now = Instant::now();
        DeltaBuffer {
            base_clients: world.clients.len(),
            zones: world.zones,
            ops: vec![PendingOp::None; world.clients.len()],
            stamps: vec![now; world.clients.len()],
            touched: Vec::new(),
            joins: Vec::new(),
            events: 0,
            bound: None,
            oldest: None,
            shed: 0,
            coalesced: 0,
            ineffective: 0,
        }
    }

    /// [`DeltaBuffer::new`] with a capacity bound: at most `bound`
    /// distinct entries (touched clients + pending joins) buffer between
    /// flushes. Under a flash-crowd burst the buffer then sheds or
    /// coalesces instead of growing without bound — see
    /// [`DeltaBuffer::push_or_shed`].
    pub fn with_bound(world: &World, bound: usize) -> DeltaBuffer {
        assert!(bound >= 1, "a zero-entry buffer cannot accept anything");
        let mut buffer = DeltaBuffer::new(world);
        buffer.bound = Some(bound);
        buffer
    }

    /// Number of events accepted since the last flush (coalesced events
    /// still count: this is the arrival counter batching policies watch).
    pub fn pending_events(&self) -> usize {
        self.events
    }

    /// Distinct buffered entries: touched base-world clients plus
    /// pending joins — the quantity the capacity bound limits.
    pub fn pending_entries(&self) -> usize {
        self.touched.len() + self.joins.len()
    }

    /// The configured entry bound, if any.
    pub fn bound(&self) -> Option<usize> {
        self.bound
    }

    /// Lifetime count of events shed by [`DeltaBuffer::push_or_shed`]
    /// because the buffer was full.
    pub fn shed_events(&self) -> u64 {
        self.shed
    }

    /// Lifetime count of events absorbed into an existing entry (a
    /// move/leave updating an already-buffered client) instead of
    /// occupying a new one.
    pub fn coalesced_events(&self) -> u64 {
        self.coalesced
    }

    /// Lifetime count of entries dropped at flush as ineffective (the
    /// coalesced result was a move back to the client's base zone, i.e.
    /// a no-op).
    pub fn ineffective_events(&self) -> u64 {
        self.ineffective
    }

    /// Earliest admission stamp among the pending entries, or `None`
    /// when the buffer is empty — the staleness clock of the ingest pull
    /// loop: flush when `oldest_admission().elapsed()` exceeds the
    /// staleness budget, so arrival-to-commit latency stays bounded even
    /// when `max_batch` is never reached.
    pub fn oldest_admission(&self) -> Option<Instant> {
        self.oldest
    }

    /// Whether the buffer holds nothing to flush.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Accepts one event, coalescing it against the buffered ones (see
    /// the module docs for the rules). With a bound configured, an event
    /// that would create a new entry while the buffer is full is refused
    /// with [`StreamError::QueueFull`] — backpressure; coalescing
    /// updates and leaves are always admitted. The admission stamp is
    /// taken now; ingest front ends that queued the event earlier should
    /// use [`DeltaBuffer::push_at`] with the original arrival time so
    /// latency stays arrival-to-commit end to end.
    pub fn push(&mut self, event: WorldEvent) -> Result<(), StreamError> {
        self.push_at(event, Instant::now())
    }

    /// [`DeltaBuffer::push`] with an explicit admission stamp: `at` is
    /// when the event *arrived* at the ingest boundary (e.g. was
    /// enqueued on an `IngestRing`), which may be well before it reached
    /// this buffer. The stamp is keyed to the entry the event creates
    /// (first-arrival wins: coalescing updates never advance it).
    pub fn push_at(&mut self, event: WorldEvent, at: Instant) -> Result<(), StreamError> {
        match event {
            WorldEvent::Join { node, zone } => {
                if zone >= self.zones {
                    return Err(StreamError::ZoneOutOfRange {
                        zone,
                        zones: self.zones,
                    });
                }
                self.check_room()?;
                self.joins.push((node, zone, at));
                self.note_admission(at);
            }
            WorldEvent::Leave { client } => {
                self.mark(client, PendingOp::Leave, at)?;
            }
            WorldEvent::Move { client, zone } => {
                if zone >= self.zones {
                    return Err(StreamError::ZoneOutOfRange {
                        zone,
                        zones: self.zones,
                    });
                }
                self.mark(client, PendingOp::Move(zone), at)?;
            }
            WorldEvent::ServerDown { server } | WorldEvent::ServerUp { server } => {
                return Err(StreamError::ServerEvent { server });
            }
        }
        self.events += 1;
        Ok(())
    }

    /// [`DeltaBuffer::push`] with the shed half of the coalesce-or-shed
    /// policy: a [`StreamError::QueueFull`] refusal drops the event and
    /// counts it in [`DeltaBuffer::shed_events`] instead of propagating.
    /// Returns whether the event was admitted; every other error still
    /// propagates (they are caller bugs, not load). A
    /// [`WorldEvent::Leave`] can never be shed here: leaves bypass the
    /// bound entirely.
    pub fn push_or_shed(&mut self, event: WorldEvent) -> Result<bool, StreamError> {
        self.push_or_shed_at(event, Instant::now())
    }

    /// [`DeltaBuffer::push_or_shed`] with an explicit admission stamp
    /// (see [`DeltaBuffer::push_at`]).
    pub fn push_or_shed_at(&mut self, event: WorldEvent, at: Instant) -> Result<bool, StreamError> {
        match self.push_at(event, at) {
            Ok(()) => Ok(true),
            Err(StreamError::QueueFull { .. }) => {
                self.shed += 1;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn check_room(&self) -> Result<(), StreamError> {
        match self.bound {
            Some(bound) if self.pending_entries() >= bound => Err(StreamError::QueueFull { bound }),
            _ => Ok(()),
        }
    }

    /// Records `at` on the staleness clock (minimum over pending
    /// entries; `push_at` makes out-of-order stamps possible).
    fn note_admission(&mut self, at: Instant) {
        if self.oldest.is_none_or(|o| at < o) {
            self.oldest = Some(at);
        }
    }

    fn mark(&mut self, client: usize, op: PendingOp, at: Instant) -> Result<(), StreamError> {
        if client >= self.base_clients {
            return Err(StreamError::ClientOutOfRange {
                client,
                clients: self.base_clients,
            });
        }
        match self.ops[client] {
            PendingOp::Leave => Err(StreamError::AlreadyLeft { client }),
            PendingOp::None => {
                // Leaves are exempt from the bound: a departure strictly
                // frees capacity at flush, and shedding one would leave
                // the engine serving a phantom client forever.
                if op != PendingOp::Leave {
                    self.check_room()?;
                }
                self.ops[client] = op;
                self.stamps[client] = at;
                self.touched.push(client);
                self.note_admission(at);
                Ok(())
            }
            PendingOp::Move(_) => {
                self.ops[client] = op;
                self.coalesced += 1;
                Ok(())
            }
        }
    }

    /// Applies every buffered event to `world` in one step and rebases
    /// the buffer onto the produced world.
    ///
    /// The outcome has exactly the batch shape: survivors keep their
    /// relative order, joiners are appended in arrival order, the delta's
    /// leaves/moves/joins are ascending by their index fields. Feeding
    /// [`DynamicsOutcome::to_events`] of an
    /// [`apply_dynamics`](crate::apply_dynamics) outcome through a buffer
    /// therefore reproduces that outcome bit-identically (`moved` is
    /// sorted rather than draw-ordered; see `to_events`).
    pub fn flush(&mut self, world: &World) -> DynamicsOutcome {
        self.flush_with_admissions(world).0
    }

    /// [`DeltaBuffer::flush`] returning the admission stamps keyed to
    /// the committed delta (see [`FlushAdmissions`]): each committed
    /// leave/move/join carries the arrival time of the event that
    /// created its entry (first-arrival wins across coalescing), and
    /// entries that were no-ops at flush surrender their stamp into the
    /// `ineffective` count. The engine-side pull loop feeds these stamps
    /// into its per-event latency histogram so latency is measured
    /// arrival-to-commit end to end.
    pub fn flush_with_admissions(&mut self, world: &World) -> (DynamicsOutcome, FlushAdmissions) {
        assert_eq!(
            world.clients.len(),
            self.base_clients,
            "flush world does not match the buffer's base world"
        );
        assert_eq!(
            world.zones, self.zones,
            "flush world's zone count does not match the buffer's"
        );
        let survivors = self.base_clients - self.count_leaves();
        let mut clients: Vec<Client> = Vec::with_capacity(survivors + self.joins.len());
        let mut carried_from: Vec<Option<usize>> = Vec::with_capacity(clients.capacity());
        let mut leaves: Vec<ClientLeave> = Vec::new();
        let mut moves: Vec<ZoneMove> = Vec::new();
        let mut moved: Vec<usize> = Vec::new();
        let mut admissions = FlushAdmissions::default();

        for (i, c) in world.clients.iter().enumerate() {
            match self.ops[i] {
                PendingOp::Leave => {
                    leaves.push(ClientLeave {
                        client: i,
                        zone: c.zone,
                    });
                    admissions.leaves.push(self.stamps[i]);
                }
                PendingOp::Move(to) if to != c.zone => {
                    let new_index = clients.len();
                    moves.push(ZoneMove {
                        old_index: i,
                        new_index,
                        from: c.zone,
                        to,
                    });
                    admissions.moves.push(self.stamps[i]);
                    moved.push(new_index);
                    clients.push(Client {
                        node: c.node,
                        zone: to,
                    });
                    carried_from.push(Some(i));
                }
                PendingOp::Move(_) => {
                    // Coalesced back to the base zone: a no-op. The
                    // entry's stamp is surrendered, not reported, so
                    // stamp counts keep matching committed events.
                    admissions.ineffective += 1;
                    clients.push(*c);
                    carried_from.push(Some(i));
                }
                PendingOp::None => {
                    clients.push(*c);
                    carried_from.push(Some(i));
                }
            }
        }
        let mut joins: Vec<ClientJoin> = Vec::with_capacity(self.joins.len());
        for &(node, zone, at) in &self.joins {
            joins.push(ClientJoin {
                client: clients.len(),
                zone,
            });
            admissions.joins.push(at);
            clients.push(Client { node, zone });
            carried_from.push(None);
        }
        self.ineffective += admissions.ineffective;

        // Rebase onto the produced world.
        for &i in &self.touched {
            self.ops[i] = PendingOp::None;
        }
        self.touched.clear();
        self.joins.clear();
        self.events = 0;
        self.oldest = None;
        self.base_clients = clients.len();
        self.ops.resize(self.base_clients, PendingOp::None);
        self.stamps.resize(self.base_clients, Instant::now());

        let mut new_world = world.clone();
        new_world.clients = clients;
        let outcome = DynamicsOutcome {
            world: new_world,
            carried_from,
            moved,
            delta: WorldDelta {
                joins,
                leaves,
                moves,
            },
        };
        (outcome, admissions)
    }

    /// The line-rate flush: commits the buffered window **into `world`
    /// in place** and returns the delta in pre-drain indexing plus the
    /// aligned admission stamps — the same events
    /// [`flush_with_admissions`](DeltaBuffer::flush_with_admissions)
    /// would produce, without rebuilding the client vector. Cost is
    /// O(touched entries + joins) where the rebuilding flush is
    /// O(population): at the production tier a 64-event micro-batch
    /// drains in microseconds instead of milliseconds, which is what
    /// keeps p99.9 arrival-to-commit inside the burst budget.
    ///
    /// Leaves are applied as `swap_remove`s in descending index order;
    /// survivors therefore do **not** keep their relative order (unlike
    /// [`flush`](DeltaBuffer::flush)). Callers tracking ids per index
    /// must replay the same swaps (see [`DrainDelta`]).
    pub fn drain_in_place(&mut self, world: &mut World) -> (DrainDelta, FlushAdmissions) {
        assert_eq!(
            world.clients.len(),
            self.base_clients,
            "drain world does not match the buffer's base world"
        );
        assert_eq!(
            world.zones, self.zones,
            "drain world's zone count does not match the buffer's"
        );
        let mut delta = DrainDelta::default();
        let mut admissions = FlushAdmissions::default();
        self.touched.sort_unstable();
        for &i in &self.touched {
            match self.ops[i] {
                PendingOp::Leave => {
                    delta.leaves.push(i);
                    admissions.leaves.push(self.stamps[i]);
                }
                PendingOp::Move(to) if to != world.clients[i].zone => {
                    delta.moves.push((i, to));
                    admissions.moves.push(self.stamps[i]);
                }
                // Coalesced back to the base zone, or a spurious touch:
                // a no-op whose stamp is surrendered, not reported.
                PendingOp::Move(_) => admissions.ineffective += 1,
                PendingOp::None => {}
            }
            self.ops[i] = PendingOp::None;
        }
        for &(node, zone, at) in &self.joins {
            delta.joins.push((node, zone));
            admissions.joins.push(at);
        }
        self.ineffective += admissions.ineffective;

        // Apply in place: zones rewrite, departures swap_remove from
        // the highest index down (so lower leave indices stay valid),
        // joiners append at the tail.
        for &(i, to) in &delta.moves {
            world.clients[i].zone = to;
        }
        for &i in delta.leaves.iter().rev() {
            world.clients.swap_remove(i);
        }
        for &(node, zone) in &delta.joins {
            world.clients.push(Client { node, zone });
        }

        // Rebase. Every op slot is None again (touched were cleared
        // above, the rest never left None), so the arrays only need
        // resizing; stamp slots are rewritten on first mark.
        self.touched.clear();
        self.joins.clear();
        self.events = 0;
        self.oldest = None;
        self.base_clients = world.clients.len();
        self.ops.resize(self.base_clients, PendingOp::None);
        self.stamps.resize(self.base_clients, Instant::now());
        (delta, admissions)
    }

    fn count_leaves(&self) -> usize {
        self.touched
            .iter()
            .filter(|&&i| self.ops[i] == PendingOp::Leave)
            .count()
    }
}

impl DynamicsOutcome {
    /// Decomposes this outcome into the event sequence (leaves, then
    /// moves, then joins — each ascending by index) that reproduces it
    /// through a [`DeltaBuffer`] flushed against the pre-churn world.
    ///
    /// Only *effective* events are emitted: a batch "move" that kept its
    /// zone (single-zone worlds) has no [`ZoneMove`] and produces no
    /// event, and the reproduced `moved` list is ascending by new-world
    /// index rather than preserving the batch path's draw order.
    pub fn to_events(&self) -> Vec<WorldEvent> {
        let mut events = Vec::with_capacity(
            self.delta.leaves.len() + self.delta.moves.len() + self.delta.joins.len(),
        );
        events.extend(
            self.delta
                .leaves
                .iter()
                .map(|l| WorldEvent::Leave { client: l.client }),
        );
        events.extend(self.delta.moves.iter().map(|m| WorldEvent::Move {
            client: m.old_index,
            zone: m.to,
        }));
        events.extend(self.delta.joins.iter().map(|j| WorldEvent::Join {
            node: self.world.clients[j.client].node,
            zone: j.zone,
        }));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{apply_dynamics, DynamicsBatch};
    use crate::scenario::ScenarioConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
        let labels: Vec<u16> = (0..100).map(|n| (n % 5) as u16).collect();
        World::generate(&config, 100, &labels, &mut rng).unwrap()
    }

    /// Replaying a batch outcome's events through a buffer reproduces the
    /// outcome bit-identically (modulo `moved` ordering).
    #[test]
    fn replay_reproduces_batch_outcome() {
        let w = small_world(1);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = DynamicsBatch {
            joins: 30,
            leaves: 40,
            moves: 25,
        };
        let batch_out = apply_dynamics(&w, &batch, 100, &mut rng);

        let mut buffer = DeltaBuffer::new(&w);
        for ev in batch_out.to_events() {
            buffer.push(ev).unwrap();
        }
        assert_eq!(buffer.pending_events(), 95);
        let stream_out = buffer.flush(&w);

        assert_eq!(stream_out.world.clients, batch_out.world.clients);
        assert_eq!(stream_out.carried_from, batch_out.carried_from);
        assert_eq!(stream_out.delta, batch_out.delta);
        let mut batch_moved = batch_out.moved.clone();
        batch_moved.sort_unstable();
        assert_eq!(stream_out.moved, batch_moved);
        assert!(buffer.is_empty());
    }

    /// After a flush the buffer is rebased: a second window against the
    /// produced world keeps working.
    #[test]
    fn flush_rebases_for_the_next_window() {
        let w = small_world(3);
        let mut buffer = DeltaBuffer::new(&w);
        buffer.push(WorldEvent::Leave { client: 7 }).unwrap();
        let first = buffer.flush(&w);
        assert_eq!(first.world.clients.len(), 199);

        buffer.push(WorldEvent::Join { node: 5, zone: 3 }).unwrap();
        buffer.push(WorldEvent::Leave { client: 198 }).unwrap();
        let second = buffer.flush(&first.world);
        assert_eq!(second.world.clients.len(), 199);
        assert_eq!(second.delta.joins.len(), 1);
        assert_eq!(second.delta.leaves.len(), 1);
    }

    #[test]
    fn move_then_move_keeps_last_destination() {
        let w = small_world(4);
        let mut buffer = DeltaBuffer::new(&w);
        buffer
            .push(WorldEvent::Move { client: 0, zone: 3 })
            .unwrap();
        buffer
            .push(WorldEvent::Move { client: 0, zone: 9 })
            .unwrap();
        let out = buffer.flush(&w);
        let expected = usize::from(w.clients[0].zone != 9);
        assert_eq!(out.delta.moves.len(), expected);
        if expected == 1 {
            assert_eq!(out.delta.moves[0].to, 9);
        }
        assert_eq!(out.world.clients[0].zone, 9);
    }

    #[test]
    fn move_then_leave_collapses_to_base_zone_leave() {
        let w = small_world(5);
        let mut buffer = DeltaBuffer::new(&w);
        buffer
            .push(WorldEvent::Move { client: 2, zone: 1 })
            .unwrap();
        buffer.push(WorldEvent::Leave { client: 2 }).unwrap();
        let out = buffer.flush(&w);
        assert!(out.delta.moves.is_empty());
        assert_eq!(out.delta.leaves.len(), 1);
        assert_eq!(out.delta.leaves[0].zone, w.clients[2].zone);
    }

    #[test]
    fn move_back_to_base_zone_is_dropped() {
        let w = small_world(6);
        let base = w.clients[4].zone;
        let other = (base + 1) % w.zones;
        let mut buffer = DeltaBuffer::new(&w);
        buffer
            .push(WorldEvent::Move {
                client: 4,
                zone: other,
            })
            .unwrap();
        buffer
            .push(WorldEvent::Move {
                client: 4,
                zone: base,
            })
            .unwrap();
        let out = buffer.flush(&w);
        assert!(out.delta.is_empty());
        assert_eq!(out.world.clients, w.clients);
    }

    #[test]
    fn events_after_leave_are_rejected() {
        let w = small_world(7);
        let mut buffer = DeltaBuffer::new(&w);
        buffer.push(WorldEvent::Leave { client: 11 }).unwrap();
        assert_eq!(
            buffer.push(WorldEvent::Leave { client: 11 }),
            Err(StreamError::AlreadyLeft { client: 11 })
        );
        assert_eq!(
            buffer.push(WorldEvent::Move {
                client: 11,
                zone: 0
            }),
            Err(StreamError::AlreadyLeft { client: 11 })
        );
    }

    #[test]
    fn out_of_range_events_are_rejected() {
        let w = small_world(8);
        let mut buffer = DeltaBuffer::new(&w);
        assert_eq!(
            buffer.push(WorldEvent::Leave { client: 200 }),
            Err(StreamError::ClientOutOfRange {
                client: 200,
                clients: 200
            })
        );
        assert_eq!(
            buffer.push(WorldEvent::Move {
                client: 0,
                zone: 15
            }),
            Err(StreamError::ZoneOutOfRange {
                zone: 15,
                zones: 15
            })
        );
        assert_eq!(
            buffer.push(WorldEvent::Join { node: 0, zone: 99 }),
            Err(StreamError::ZoneOutOfRange {
                zone: 99,
                zones: 15
            })
        );
        assert!(buffer.is_empty());
    }

    /// The coalesce-or-shed policy under a flash-crowd-shaped burst: a
    /// bounded buffer admits up to its bound of distinct entries, keeps
    /// absorbing same-client updates (coalesce), refuses new entries
    /// (backpressure) or sheds them counted — and never grows past the
    /// bound.
    #[test]
    fn bounded_buffer_sheds_and_coalesces_instead_of_growing() {
        let w = small_world(10);
        let mut buffer = DeltaBuffer::with_bound(&w, 8);
        assert_eq!(buffer.bound(), Some(8));
        // Fill the bound with distinct movers.
        for client in 0..8 {
            buffer.push(WorldEvent::Move { client, zone: 1 }).unwrap();
        }
        assert_eq!(buffer.pending_entries(), 8);
        // A 9th distinct client is backpressured...
        assert_eq!(
            buffer.push(WorldEvent::Move { client: 8, zone: 2 }),
            Err(StreamError::QueueFull { bound: 8 })
        );
        assert_eq!(
            buffer.push(WorldEvent::Join { node: 0, zone: 0 }),
            Err(StreamError::QueueFull { bound: 8 })
        );
        // ...or shed (counted), while same-client updates still coalesce.
        assert_eq!(
            buffer.push_or_shed(WorldEvent::Move { client: 9, zone: 2 }),
            Ok(false)
        );
        assert_eq!(buffer.shed_events(), 1);
        buffer
            .push(WorldEvent::Move { client: 3, zone: 5 })
            .unwrap();
        assert_eq!(buffer.coalesced_events(), 1);
        assert_eq!(buffer.pending_entries(), 8, "coalescing adds no entry");
        // Leave-after-move coalesces too (the move entry is reused).
        buffer.push(WorldEvent::Leave { client: 4 }).unwrap();
        assert_eq!(buffer.pending_entries(), 8);
        // A flush drains the bound; the buffer accepts again.
        let out = buffer.flush(&w);
        assert_eq!(out.delta.moves.len(), 7);
        assert_eq!(out.delta.leaves.len(), 1);
        buffer
            .push(WorldEvent::Move { client: 0, zone: 2 })
            .unwrap();
        assert_eq!(buffer.pending_entries(), 1);
    }

    /// Regression: a Leave must never be shed at the bound. Shedding a
    /// departure would leave the engine serving a phantom client forever
    /// — a leave strictly frees capacity at flush, so it is admitted even
    /// past the bound.
    #[test]
    fn leave_is_never_shed_at_the_bound() {
        let w = small_world(13);
        let mut buffer = DeltaBuffer::with_bound(&w, 4);
        for client in 0..4 {
            buffer.push(WorldEvent::Move { client, zone: 1 }).unwrap();
        }
        assert_eq!(buffer.pending_entries(), 4);
        // New movers and joiners are refused at the bound...
        assert_eq!(
            buffer.push(WorldEvent::Move { client: 7, zone: 2 }),
            Err(StreamError::QueueFull { bound: 4 })
        );
        // ...but a Leave for an untouched client is admitted past it.
        buffer.push(WorldEvent::Leave { client: 8 }).unwrap();
        assert_eq!(buffer.pending_entries(), 5, "leave overflows the bound");
        assert_eq!(
            buffer.push_or_shed(WorldEvent::Leave { client: 9 }),
            Ok(true),
            "push_or_shed must not shed a leave"
        );
        assert_eq!(buffer.shed_events(), 0);
        let out = buffer.flush(&w);
        assert_eq!(out.delta.leaves.len(), 2, "both leaves committed");
        assert_eq!(out.world.clients.len(), 198);
    }

    /// Admission timestamps are keyed to entries and come back from
    /// [`DeltaBuffer::flush_with_admissions`] aligned one-to-one with the
    /// committed delta — the arrival-to-commit measurement hook of the
    /// ingest boundary.
    #[test]
    fn admission_timestamps_align_with_the_committed_delta() {
        let w = small_world(11);
        let mut buffer = DeltaBuffer::with_bound(&w, 2);
        let t0 = Instant::now();
        buffer.push_at(WorldEvent::Leave { client: 0 }, t0).unwrap();
        let t1 = Instant::now();
        buffer
            .push_at(WorldEvent::Move { client: 1, zone: 3 }, t1)
            .unwrap();
        assert_eq!(buffer.oldest_admission(), Some(t0), "staleness clock");
        // A shed event gets no admission stamp.
        assert_eq!(
            buffer.push_or_shed(WorldEvent::Move { client: 2, zone: 3 }),
            Ok(false)
        );
        let (out, admissions) = buffer.flush_with_admissions(&w);
        assert_eq!(admissions.leaves.len(), out.delta.leaves.len());
        assert_eq!(admissions.moves.len(), out.delta.moves.len());
        assert_eq!(admissions.joins.len(), out.delta.joins.len());
        assert_eq!(admissions.leaves, vec![t0]);
        let expected_moves = usize::from(w.clients[1].zone != 3);
        if expected_moves == 1 {
            assert_eq!(admissions.moves, vec![t1]);
            assert_eq!(admissions.ineffective, 0);
        } else {
            assert!(admissions.moves.is_empty());
            assert_eq!(admissions.ineffective, 1);
        }
        assert_eq!(
            buffer.oldest_admission(),
            None,
            "flush resets the staleness clock"
        );
    }

    /// The in-place drain commits the same window as the rebuilding
    /// flush — identical event multiset, identical stamps, identical
    /// post-flush population up to the documented `swap_remove`
    /// reordering — while mutating the mirror world directly.
    #[test]
    fn drain_in_place_matches_flush_semantics() {
        let w = small_world(21);
        let t = Instant::now();
        let feed = |buffer: &mut DeltaBuffer| {
            buffer.push_at(WorldEvent::Leave { client: 2 }, t).unwrap();
            buffer
                .push_at(WorldEvent::Move { client: 5, zone: 9 }, t)
                .unwrap();
            buffer.push_at(WorldEvent::Leave { client: 7 }, t).unwrap();
            buffer
                .push_at(WorldEvent::Join { node: 3, zone: 1 }, t)
                .unwrap();
            // Coalesced back to base: surrendered by both paths.
            let base = 4;
            let away = (w.clients[base].zone + 1) % w.zones;
            buffer
                .push_at(
                    WorldEvent::Move {
                        client: base,
                        zone: away,
                    },
                    t,
                )
                .unwrap();
            buffer
                .push_at(
                    WorldEvent::Move {
                        client: base,
                        zone: w.clients[base].zone,
                    },
                    t,
                )
                .unwrap();
        };
        let mut rebuild = DeltaBuffer::new(&w);
        feed(&mut rebuild);
        let (outcome, flush_adm) = rebuild.flush_with_admissions(&w);

        let mut drain = DeltaBuffer::new(&w);
        feed(&mut drain);
        let mut mirror = w.clone();
        let (delta, drain_adm) = drain.drain_in_place(&mut mirror);

        // Same committed events against pre-flush indices.
        assert_eq!(delta.leaves, vec![2, 7]);
        assert_eq!(
            delta.leaves,
            outcome
                .delta
                .leaves
                .iter()
                .map(|l| l.client)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            delta.moves,
            outcome
                .delta
                .moves
                .iter()
                .map(|m| (m.old_index, m.to))
                .collect::<Vec<_>>()
        );
        assert_eq!(delta.joins, vec![(3, 1)]);
        assert_eq!(drain_adm.leaves, flush_adm.leaves);
        assert_eq!(drain_adm.moves, flush_adm.moves);
        assert_eq!(drain_adm.joins, flush_adm.joins);
        assert_eq!(drain_adm.ineffective, flush_adm.ineffective);

        // Same population, same contents up to the swap_remove
        // reordering; both buffers rebased onto it.
        assert_eq!(mirror.clients.len(), outcome.world.clients.len());
        let key = |c: &Client| (c.node, c.zone);
        let mut a: Vec<_> = mirror.clients.iter().map(key).collect();
        let mut b: Vec<_> = outcome.world.clients.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(drain.is_empty());
        assert_eq!(drain.oldest_admission(), None);
        // The drained buffer keeps accepting against the new indexing.
        drain
            .push(WorldEvent::Move {
                client: mirror.clients.len() - 1,
                zone: 0,
            })
            .unwrap();
    }

    /// First arrival wins across coalescing: a coalesced entry keeps the
    /// stamp of the event that created it, per the UQP model.
    #[test]
    fn coalesced_entries_keep_the_first_arrival_stamp() {
        let w = small_world(14);
        let base = w.clients[0].zone;
        let a = (base + 1) % w.zones;
        let b = (base + 2) % w.zones;
        let mut buffer = DeltaBuffer::new(&w);
        let t0 = Instant::now();
        let t1 = t0 + std::time::Duration::from_millis(5);
        buffer
            .push_at(WorldEvent::Move { client: 0, zone: a }, t0)
            .unwrap();
        buffer
            .push_at(WorldEvent::Move { client: 0, zone: b }, t1)
            .unwrap();
        let (out, admissions) = buffer.flush_with_admissions(&w);
        assert_eq!(out.delta.moves.len(), 1);
        assert_eq!(out.delta.moves[0].to, b, "last destination wins");
        assert_eq!(admissions.moves, vec![t0], "first arrival wins");
    }

    /// A move-then-move-back window commits nothing and yields no stamp:
    /// sample counts stay consistent with committed event counts, and the
    /// surrendered entry is visible in the ineffective counters.
    #[test]
    fn move_then_move_back_yields_consistent_sample_counts() {
        let w = small_world(15);
        let base = w.clients[6].zone;
        let other = (base + 1) % w.zones;
        let mut buffer = DeltaBuffer::new(&w);
        buffer
            .push(WorldEvent::Move {
                client: 6,
                zone: other,
            })
            .unwrap();
        buffer
            .push(WorldEvent::Move {
                client: 6,
                zone: base,
            })
            .unwrap();
        assert_eq!(buffer.pending_events(), 2);
        assert_eq!(buffer.coalesced_events(), 1);
        let (out, admissions) = buffer.flush_with_admissions(&w);
        assert!(out.delta.is_empty());
        let stamps = admissions.leaves.len() + admissions.moves.len() + admissions.joins.len();
        assert_eq!(stamps, 0, "no committed event, no stamp");
        assert_eq!(admissions.ineffective, 1, "the entry is accounted for");
        assert_eq!(buffer.ineffective_events(), 1);
    }

    /// Flushing against a world with a different zone count is a caller
    /// bug: the buffer validated every Move against its own zone count,
    /// so committing to a mismatched world would mis-validate bounds.
    #[test]
    #[should_panic(expected = "zone count")]
    fn flush_panics_on_zone_count_mismatch() {
        let w = small_world(16);
        let mut buffer = DeltaBuffer::new(&w);
        let mut other = w.clone();
        other.zones += 1;
        buffer.flush(&other);
    }

    /// Server fault events are infrastructure events: the churn
    /// coalescer refuses them so they cannot be silently dropped into a
    /// batch delta.
    #[test]
    fn server_fault_events_are_rejected_by_the_coalescer() {
        let w = small_world(12);
        let mut buffer = DeltaBuffer::new(&w);
        assert_eq!(
            buffer.push(WorldEvent::ServerDown { server: 2 }),
            Err(StreamError::ServerEvent { server: 2 })
        );
        assert_eq!(
            buffer.push(WorldEvent::ServerUp { server: 2 }),
            Err(StreamError::ServerEvent { server: 2 })
        );
        assert!(buffer.is_empty());
    }

    #[test]
    fn empty_flush_is_identity() {
        let w = small_world(9);
        let mut buffer = DeltaBuffer::new(&w);
        let out = buffer.flush(&w);
        assert!(out.delta.is_empty());
        assert_eq!(out.world.clients, w.clients);
        assert!(out.carried_from.iter().all(|c| c.is_some()));
    }
}
