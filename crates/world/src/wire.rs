//! Length-prefixed wire protocol for streaming [`WorldEvent`]s over a
//! byte channel (the `dvecap serve` TCP front end).
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [u32 length][u8 opcode][payload...]
//! ```
//!
//! `length` counts the opcode byte plus the payload, **not** itself.
//! Payload fields are `u64`s:
//!
//! | opcode | event        | payload            | length |
//! |--------|--------------|--------------------|--------|
//! | `0x01` | `Join`       | `node`, `zone`     | 17     |
//! | `0x02` | `Leave`      | `client`           | 9      |
//! | `0x03` | `Move`       | `client`, `zone`   | 17     |
//! | `0x04` | `ServerDown` | `server`           | 9      |
//! | `0x05` | `ServerUp`   | `server`           | 9      |
//!
//! On the wire, `client` is a **stable client id** (the serving engine's
//! `ClientId` discipline: the initial population is `0..k` in index
//! order, joiners take sequential ids in admission order), *not* a
//! base-world index — remote producers cannot track per-flush index
//! rebasing. The engine-side pull loop owns the translation table. A
//! frame longer than [`MAX_FRAME`] is refused outright so a garbage
//! length prefix cannot make the reader buffer gigabytes.
//!
//! [`FrameReader`] is the incremental decoder: feed it byte chunks as
//! they come off a socket and drain complete events with
//! [`FrameReader::next_event`].

use crate::stream::WorldEvent;

/// Opcode of a [`WorldEvent::Join`] frame.
pub const OP_JOIN: u8 = 0x01;
/// Opcode of a [`WorldEvent::Leave`] frame.
pub const OP_LEAVE: u8 = 0x02;
/// Opcode of a [`WorldEvent::Move`] frame.
pub const OP_MOVE: u8 = 0x03;
/// Opcode of a [`WorldEvent::ServerDown`] frame.
pub const OP_SERVER_DOWN: u8 = 0x04;
/// Opcode of a [`WorldEvent::ServerUp`] frame.
pub const OP_SERVER_UP: u8 = 0x05;

/// Largest body (opcode + payload) a frame may declare: the biggest
/// legal frame is 17 bytes, so anything past this is a corrupt or
/// hostile length prefix.
pub const MAX_FRAME: u32 = 64;

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the payload its opcode requires.
    Truncated {
        /// Declared body length.
        got: usize,
        /// Length the opcode requires.
        want: usize,
    },
    /// Unknown opcode byte.
    BadOpcode {
        /// The offending byte.
        opcode: u8,
    },
    /// The length prefix declares an empty body (no opcode).
    BadLength,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared body length.
        length: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { got, want } => {
                write!(f, "frame body is {got} bytes, opcode requires {want}")
            }
            WireError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode:#04x}"),
            WireError::BadLength => write!(f, "frame declares an empty body"),
            WireError::Oversized { length } => {
                write!(f, "frame declares {length} bytes (max {MAX_FRAME})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Appends one framed event to `out` (length prefix included).
pub fn encode_event(event: &WorldEvent, out: &mut Vec<u8>) {
    let (opcode, a, b) = match *event {
        WorldEvent::Join { node, zone } => (OP_JOIN, node as u64, Some(zone as u64)),
        WorldEvent::Leave { client } => (OP_LEAVE, client as u64, None),
        WorldEvent::Move { client, zone } => (OP_MOVE, client as u64, Some(zone as u64)),
        WorldEvent::ServerDown { server } => (OP_SERVER_DOWN, server as u64, None),
        WorldEvent::ServerUp { server } => (OP_SERVER_UP, server as u64, None),
    };
    let length: u32 = 1 + 8 + if b.is_some() { 8 } else { 0 };
    out.extend_from_slice(&length.to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(&a.to_le_bytes());
    if let Some(b) = b {
        out.extend_from_slice(&b.to_le_bytes());
    }
}

fn read_u64(body: &[u8], offset: usize) -> Result<u64, WireError> {
    let bytes: [u8; 8] = body
        .get(offset..offset + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or(WireError::Truncated {
            got: body.len(),
            want: offset + 8,
        })?;
    Ok(u64::from_le_bytes(bytes))
}

/// Decodes one frame **body** (opcode + payload, the length prefix
/// already stripped) into a [`WorldEvent`].
pub fn decode_event(body: &[u8]) -> Result<WorldEvent, WireError> {
    let &opcode = body.first().ok_or(WireError::BadLength)?;
    let payload = &body[1..];
    let want = match opcode {
        OP_JOIN | OP_MOVE => 16,
        OP_LEAVE | OP_SERVER_DOWN | OP_SERVER_UP => 8,
        _ => return Err(WireError::BadOpcode { opcode }),
    };
    if payload.len() != want {
        return Err(WireError::Truncated {
            got: body.len(),
            want: want + 1,
        });
    }
    let a = read_u64(payload, 0)? as usize;
    Ok(match opcode {
        OP_JOIN => WorldEvent::Join {
            node: a,
            zone: read_u64(payload, 8)? as usize,
        },
        OP_LEAVE => WorldEvent::Leave { client: a },
        OP_MOVE => WorldEvent::Move {
            client: a,
            zone: read_u64(payload, 8)? as usize,
        },
        OP_SERVER_DOWN => WorldEvent::ServerDown { server: a },
        _ => WorldEvent::ServerUp { server: a },
    })
}

/// Incremental frame decoder: buffer bytes as they arrive with
/// [`FrameReader::feed`], drain complete frames with
/// [`FrameReader::next_event`]. Partial frames stay buffered across
/// feeds, so arbitrary chunking (down to one byte at a time) decodes
/// identically.
#[derive(Debug, Default)]
pub struct FrameReader {
    buffer: Vec<u8>,
    /// Bytes already consumed off the front of `buffer`; compacted
    /// lazily so a feed/next cycle does not memmove per frame.
    consumed: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Buffers `bytes` for decoding.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed == self.buffer.len() {
            self.buffer.clear();
            self.consumed = 0;
        }
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a nonzero value after the
    /// producer hangs up means a truncated final frame).
    pub fn pending_bytes(&self) -> usize {
        self.buffer.len() - self.consumed
    }

    /// Decodes the next complete frame, if one is buffered. `Ok(None)`
    /// means "need more bytes". A [`WireError`] is fatal for the stream:
    /// framing is lost, the connection should be dropped.
    pub fn next_event(&mut self) -> Result<Option<WorldEvent>, WireError> {
        let pending = &self.buffer[self.consumed..];
        let Some(prefix) = pending.get(..4) else {
            return Ok(None);
        };
        let length = u32::from_le_bytes(prefix.try_into().expect("4-byte slice"));
        if length == 0 {
            return Err(WireError::BadLength);
        }
        if length > MAX_FRAME {
            return Err(WireError::Oversized { length });
        }
        let body_len = length as usize;
        let Some(body) = pending.get(4..4 + body_len) else {
            return Ok(None);
        };
        let event = decode_event(body)?;
        self.consumed += 4 + body_len;
        if self.consumed >= self.buffer.len() {
            self.buffer.clear();
            self.consumed = 0;
        } else if self.consumed > 4096 {
            self.buffer.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WorldEvent> {
        vec![
            WorldEvent::Join { node: 3, zone: 999 },
            WorldEvent::Leave { client: 0 },
            WorldEvent::Move {
                client: 123_456,
                zone: 42,
            },
            WorldEvent::ServerDown { server: 7 },
            WorldEvent::ServerUp { server: 7 },
        ]
    }

    #[test]
    fn events_round_trip_through_the_frame_reader() {
        let events = sample_events();
        let mut bytes = Vec::new();
        for ev in &events {
            encode_event(ev, &mut bytes);
        }
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        let mut decoded = Vec::new();
        while let Some(ev) = reader.next_event().unwrap() {
            decoded.push(ev);
        }
        assert_eq!(decoded, events);
        assert_eq!(reader.pending_bytes(), 0);
    }

    /// Chunking must not matter: one byte per feed decodes the same
    /// stream.
    #[test]
    fn byte_by_byte_feeding_decodes_identically() {
        let events = sample_events();
        let mut bytes = Vec::new();
        for ev in &events {
            encode_event(ev, &mut bytes);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for b in bytes {
            reader.feed(&[b]);
            while let Some(ev) = reader.next_event().unwrap() {
                decoded.push(ev);
            }
        }
        assert_eq!(decoded, events);
    }

    #[test]
    fn partial_frame_reports_pending_bytes() {
        let mut bytes = Vec::new();
        encode_event(&WorldEvent::Leave { client: 5 }, &mut bytes);
        let mut reader = FrameReader::new();
        reader.feed(&bytes[..bytes.len() - 1]);
        assert_eq!(reader.next_event(), Ok(None));
        assert!(reader.pending_bytes() > 0);
        reader.feed(&bytes[bytes.len() - 1..]);
        assert_eq!(
            reader.next_event(),
            Ok(Some(WorldEvent::Leave { client: 5 }))
        );
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn malformed_frames_are_refused() {
        // Unknown opcode.
        let mut reader = FrameReader::new();
        reader.feed(&9u32.to_le_bytes());
        reader.feed(&[0xFF]);
        reader.feed(&0u64.to_le_bytes());
        assert_eq!(
            reader.next_event(),
            Err(WireError::BadOpcode { opcode: 0xFF })
        );

        // Length too short for the opcode's payload.
        let mut reader = FrameReader::new();
        reader.feed(&9u32.to_le_bytes());
        reader.feed(&[OP_MOVE]);
        reader.feed(&0u64.to_le_bytes());
        assert_eq!(
            reader.next_event(),
            Err(WireError::Truncated { got: 9, want: 17 })
        );

        // Zero-length frame.
        let mut reader = FrameReader::new();
        reader.feed(&0u32.to_le_bytes());
        assert_eq!(reader.next_event(), Err(WireError::BadLength));

        // Hostile length prefix is refused before buffering gigabytes.
        let mut reader = FrameReader::new();
        reader.feed(&u32::MAX.to_le_bytes());
        assert_eq!(
            reader.next_event(),
            Err(WireError::Oversized { length: u32::MAX })
        );
    }
}
