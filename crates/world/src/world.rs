//! The populated DVE world: servers placed on topology nodes with
//! capacities, clients placed on topology nodes with a virtual-world zone
//! each, generated from a [`ScenarioConfig`](crate::ScenarioConfig) over a
//! topology.

use crate::correlation::CorrelationModel;
use crate::distribution::{hot_weights, WeightedIndex};
use crate::scenario::{CapacityPolicy, ScenarioConfig};
use rand::Rng;

/// A server: its topology node and bandwidth capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Server {
    /// Topology node hosting the server.
    pub node: usize,
    /// Bandwidth capacity in bits per second.
    pub capacity_bps: f64,
}

/// A client: its topology node (physical location) and current zone
/// (virtual location).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Client {
    /// Topology node the client connects from.
    pub node: usize,
    /// Virtual-world zone the client's avatar is in.
    pub zone: usize,
}

/// A fully instantiated DVE scenario.
#[derive(Debug, Clone)]
pub struct World {
    /// Number of virtual-world zones.
    pub zones: usize,
    /// The servers.
    pub servers: Vec<Server>,
    /// The clients.
    pub clients: Vec<Client>,
    /// The scenario this world was generated from.
    pub config: ScenarioConfig,
    /// Zones marked "hot" during generation (empty when uniform).
    pub hot_zones: Vec<usize>,
    /// Physical nodes marked "hot" during generation (empty when uniform).
    pub hot_nodes: Vec<usize>,
}

/// Errors raised during world generation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldError {
    /// Scenario config failed validation.
    BadConfig(String),
    /// The topology has fewer nodes than requested servers.
    NotEnoughNodes {
        /// Nodes available in the topology.
        nodes: usize,
        /// Servers requested.
        servers: usize,
    },
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::BadConfig(msg) => write!(f, "bad scenario config: {msg}"),
            WorldError::NotEnoughNodes { nodes, servers } => {
                write!(
                    f,
                    "{servers} servers need distinct nodes, topology has {nodes}"
                )
            }
        }
    }
}

impl std::error::Error for WorldError {}

impl World {
    /// Generates a world over a topology described by its node count and
    /// per-node region labels (see
    /// [`Topology::as_of_node`](dve_topology::Topology)).
    pub fn generate<R: Rng + ?Sized>(
        config: &ScenarioConfig,
        num_nodes: usize,
        as_of_node: &[u16],
        rng: &mut R,
    ) -> Result<World, WorldError> {
        config.validate().map_err(WorldError::BadConfig)?;
        assert_eq!(
            as_of_node.len(),
            num_nodes,
            "region labels must cover nodes"
        );
        if num_nodes < config.servers {
            return Err(WorldError::NotEnoughNodes {
                nodes: num_nodes,
                servers: config.servers,
            });
        }
        let regions = as_of_node
            .iter()
            .copied()
            .max()
            .map_or(1, |m| m as usize + 1);

        // --- Servers: distinct random nodes, capacities per policy. ---
        let server_nodes = sample_distinct(num_nodes, config.servers, rng);
        let capacities = allocate_capacities(config, rng);
        let servers = server_nodes
            .into_iter()
            .zip(capacities)
            .map(|(node, capacity_bps)| Server { node, capacity_bps })
            .collect();

        // --- Physical placement weights (hot nodes). ---
        let (node_weights, hot_nodes) = if config.distribution.clustered_physical() {
            hot_weights(num_nodes, config.hot_nodes, config.hot_node_factor, rng)
        } else {
            (vec![1.0; num_nodes], vec![])
        };
        let node_table = WeightedIndex::new(&node_weights);

        // --- Virtual placement weights (hot zones) + correlation. ---
        let (zone_weights, hot_zones) = if config.distribution.clustered_virtual() {
            hot_weights(config.zones, config.hot_zones, config.hot_zone_factor, rng)
        } else {
            (vec![1.0; config.zones], vec![])
        };
        let zone_table = WeightedIndex::new(&zone_weights);
        let correlation = CorrelationModel::new(config.zones, regions, config.correlation);

        let clients = (0..config.clients)
            .map(|_| {
                let node = node_table.sample(rng);
                let region = as_of_node[node] as usize;
                let zone =
                    correlation.sample_zone_weighted(region, &zone_weights, &zone_table, rng);
                Client { node, zone }
            })
            .collect();

        Ok(World {
            zones: config.zones,
            servers,
            clients,
            config: config.clone(),
            hot_zones,
            hot_nodes,
        })
    }

    /// Number of clients currently in each zone.
    pub fn zone_populations(&self) -> Vec<usize> {
        let mut pop = vec![0usize; self.zones];
        for c in &self.clients {
            pop[c.zone] += 1;
        }
        pop
    }

    /// Indices of clients in `zone`.
    pub fn clients_in_zone(&self, zone: usize) -> Vec<usize> {
        self.clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.zone == zone)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total offered zone load under the world's bandwidth model, in bps
    /// (the `sum R_z` of the paper; excludes forwarding overheads).
    pub fn total_zone_load_bps(&self) -> f64 {
        self.zone_populations()
            .iter()
            .map(|&n| self.config.bandwidth.zone_bps(n))
            .sum()
    }

    /// Total server capacity in bps.
    pub fn total_capacity_bps(&self) -> f64 {
        self.servers.iter().map(|s| s.capacity_bps).sum()
    }
}

/// Samples `k` distinct values from `0..n` (partial Fisher–Yates).
fn sample_distinct<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let pick = rng.gen_range(i..n);
        pool.swap(i, pick);
    }
    pool.truncate(k);
    pool
}

/// Splits total capacity across servers per the configured policy,
/// guaranteeing every server at least the minimum.
fn allocate_capacities<R: Rng + ?Sized>(config: &ScenarioConfig, rng: &mut R) -> Vec<f64> {
    let m = config.servers;
    match config.capacity_policy {
        CapacityPolicy::Uniform => vec![config.total_capacity_bps / m as f64; m],
        CapacityPolicy::RandomHeterogeneous => {
            let spare = config.total_capacity_bps - config.min_capacity_bps * m as f64;
            let mut shares: Vec<f64> = (0..m).map(|_| rng.gen::<f64>()).collect();
            let total_share: f64 = shares.iter().sum();
            if total_share <= 0.0 {
                shares = vec![1.0; m];
            }
            let total_share: f64 = shares.iter().sum();
            shares
                .into_iter()
                .map(|s| config.min_capacity_bps + spare * s / total_share)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn region_labels(nodes: usize, regions: usize) -> Vec<u16> {
        (0..nodes).map(|n| (n % regions) as u16).collect()
    }

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = ScenarioConfig::default();
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        assert_eq!(w.servers.len(), 20);
        assert_eq!(w.clients.len(), 1000);
        assert_eq!(w.zones, 80);
        // Uniform capacity: 25 Mbps each.
        for s in &w.servers {
            assert!((s.capacity_bps - 25e6).abs() < 1.0);
            assert!(s.node < 500);
        }
        for c in &w.clients {
            assert!(c.node < 500);
            assert!(c.zone < 80);
        }
        assert!((w.total_capacity_bps() - 500e6).abs() < 1.0);
    }

    #[test]
    fn server_nodes_are_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = ScenarioConfig::default();
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        let mut nodes: Vec<usize> = w.servers.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 20);
    }

    #[test]
    fn rejects_too_few_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = ScenarioConfig::default(); // 20 servers
        let labels = region_labels(10, 2);
        assert!(matches!(
            World::generate(&config, 10, &labels, &mut rng),
            Err(WorldError::NotEnoughNodes { .. })
        ));
    }

    #[test]
    fn clustered_virtual_inflates_hot_zone_population() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut config = ScenarioConfig::default();
        config.distribution = DistributionType::ClusteredVirtual;
        config.correlation = 0.0;
        config.hot_zones = 2;
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        assert_eq!(w.hot_zones.len(), 2);
        let pops = w.zone_populations();
        let hot_avg: f64 =
            w.hot_zones.iter().map(|&z| pops[z] as f64).sum::<f64>() / w.hot_zones.len() as f64;
        let normal_avg: f64 = pops
            .iter()
            .enumerate()
            .filter(|(z, _)| !w.hot_zones.contains(z))
            .map(|(_, &p)| p as f64)
            .sum::<f64>()
            / (80 - 2) as f64;
        assert!(
            hot_avg > 5.0 * normal_avg,
            "hot {hot_avg} vs normal {normal_avg}"
        );
    }

    #[test]
    fn clustered_physical_inflates_hot_node_population() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut config = ScenarioConfig::default();
        config.distribution = DistributionType::ClusteredPhysical;
        config.hot_nodes = 5;
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        assert_eq!(w.hot_nodes.len(), 5);
        let mut node_pop = vec![0usize; 500];
        for c in &w.clients {
            node_pop[c.node] += 1;
        }
        let hot: usize = w.hot_nodes.iter().map(|&n| node_pop[n]).sum();
        // 5 hot nodes with weight 10 against 495 normal: expected share
        // 50/545 of 1000 clients ~ 92; demand far above the uniform ~10.
        assert!(hot > 40, "hot node clients {hot}");
    }

    #[test]
    fn uniform_distribution_has_no_hot_sets() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = ScenarioConfig::default();
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        assert!(w.hot_zones.is_empty());
        assert!(w.hot_nodes.is_empty());
    }

    #[test]
    fn zone_populations_sum_to_clients() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
        let labels = region_labels(100, 5);
        let w = World::generate(&config, 100, &labels, &mut rng).unwrap();
        assert_eq!(w.zone_populations().iter().sum::<usize>(), 200);
        let z0 = w.clients_in_zone(0);
        for i in z0 {
            assert_eq!(w.clients[i].zone, 0);
        }
    }

    #[test]
    fn heterogeneous_capacity_respects_min_and_total() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut config = ScenarioConfig::default();
        config.capacity_policy = CapacityPolicy::RandomHeterogeneous;
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        for s in &w.servers {
            assert!(s.capacity_bps >= config.min_capacity_bps - 1.0);
        }
        assert!((w.total_capacity_bps() - 500e6).abs() < 1e3);
    }

    #[test]
    fn total_zone_load_matches_bandwidth_model() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = ScenarioConfig::default();
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        let expected: f64 = w
            .zone_populations()
            .iter()
            .map(|&n| config.bandwidth.zone_bps(n))
            .sum();
        assert!((w.total_zone_load_bps() - expected).abs() < 1e-6);
        // Default scenario must be comfortably feasible in aggregate.
        assert!(w.total_zone_load_bps() < w.total_capacity_bps());
    }

    #[test]
    fn correlated_world_places_region_clients_in_preferred_zones() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut config = ScenarioConfig::default();
        config.correlation = 1.0;
        let labels = region_labels(500, 20);
        let w = World::generate(&config, 500, &labels, &mut rng).unwrap();
        let model = CorrelationModel::new(80, 20, 1.0);
        for c in &w.clients {
            let region = labels[c.node] as usize;
            assert!(model.preferred_zones(region).contains(&c.zone));
        }
    }
}
