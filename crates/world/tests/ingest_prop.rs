//! Property tests for the ingest front end: the SPSC ring preserves
//! arrival order and never loses an admitted event, and its
//! backpressure composes with the `DeltaBuffer` bound — shed counters
//! across both layers plus committed entries account for every event.

use dve_world::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn labels(nodes: usize, regions: usize) -> Vec<u16> {
    (0..nodes).map(|n| (n % regions.max(1)) as u16).collect()
}

fn small_world(seed: u64, zones: usize, clients: usize) -> World {
    let mut config = ScenarioConfig::default();
    config.servers = 4;
    config.zones = zones;
    config.clients = clients;
    let mut rng = StdRng::seed_from_u64(seed);
    World::generate(&config, 50, &labels(50, 5), &mut rng).unwrap()
}

/// Draws a random churn event against a fixed population/zone range.
fn draw_event(rng: &mut StdRng, clients: usize, zones: usize) -> WorldEvent {
    match rng.gen_range(0..3) {
        0 => WorldEvent::Join {
            node: rng.gen_range(0..50),
            zone: rng.gen_range(0..zones),
        },
        1 => WorldEvent::Leave {
            client: rng.gen_range(0..clients),
        },
        _ => WorldEvent::Move {
            client: rng.gen_range(0..clients),
            zone: rng.gen_range(0..zones),
        },
    }
}

/// Drains the ring into the buffer through the coalesce-or-shed
/// boundary, asserting a Leave is never among the shed.
fn drain(
    ring: &IngestRing,
    buffer: &mut DeltaBuffer,
    buffered: &mut u64,
    drained_leaves: &mut u64,
) {
    while let Some(adm) = ring.pop() {
        match buffer.push_or_shed_at(adm.event, adm.admitted) {
            Ok(true) => {
                *buffered += 1;
                if matches!(adm.event, WorldEvent::Leave { .. }) {
                    *drained_leaves += 1;
                }
            }
            Ok(false) => assert!(
                !matches!(adm.event, WorldEvent::Leave { .. }),
                "a leave must never shed at the buffer"
            ),
            Err(e) => panic!("unexpected stream error: {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-threaded interleavings of pushes and pops: FIFO order is
    /// exact, nothing admitted is lost, admission stamps are monotone
    /// in arrival order, and the shed counter accounts for every
    /// refused event.
    #[test]
    fn ring_preserves_order_and_loses_nothing(seed in any::<u64>(),
                                              capacity in 1usize..32,
                                              ops in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = IngestRing::with_capacity(capacity);
        let mut pushed: Vec<WorldEvent> = Vec::new();
        let mut popped: Vec<Admitted> = Vec::new();
        let mut attempts = 0u64;
        for _ in 0..ops {
            if rng.gen_bool(0.6) {
                let ev = draw_event(&mut rng, 100, 10);
                attempts += 1;
                if ring.push_or_shed(ev).unwrap() {
                    pushed.push(ev);
                }
            } else if let Some(adm) = ring.pop() {
                popped.push(adm);
            }
            prop_assert!(ring.len() <= capacity);
        }
        while let Some(adm) = ring.pop() {
            popped.push(adm);
        }
        // Nothing admitted is lost, order is exact.
        let drained: Vec<WorldEvent> = popped.iter().map(|a| a.event).collect();
        prop_assert_eq!(&drained, &pushed);
        // Stamps are monotone in arrival order.
        for pair in popped.windows(2) {
            prop_assert!(pair[0].admitted <= pair[1].admitted);
        }
        // Every attempt is accounted for: admitted or shed.
        prop_assert_eq!(pushed.len() as u64 + ring.shed_events(), attempts);
    }

    /// Backpressure composes across the two layers: total arrivals =
    /// ring-shed + buffer-shed + entries that reached the buffer, and a
    /// Leave is never among the shed at either layer (the producer uses
    /// blocking pushes for leaves; the buffer admits them past its
    /// bound).
    #[test]
    fn shed_counters_compose_across_ring_and_buffer(seed in any::<u64>(),
                                                    ring_cap in 1usize..24,
                                                    bound in 1usize..24,
                                                    events in 1usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let world = small_world(seed, 10, 60);
        let ring = IngestRing::with_capacity(ring_cap);
        let mut buffer = DeltaBuffer::with_bound(&world, bound);

        let mut sent = 0u64;
        let mut buffered = 0u64;
        let mut drained_leaves = 0u64;
        let mut sent_leaves = 0u64;
        // A well-behaved producer never addresses a departed client
        // (the engine-side pull loop counts such events as dropped, a
        // different property).
        let mut gone = [false; 60];
        for _ in 0..events {
            let ev = draw_event(&mut rng, 60, 10);
            match ev {
                WorldEvent::Leave { client } | WorldEvent::Move { client, .. }
                    if gone[client] =>
                {
                    continue;
                }
                _ => {}
            }
            if let WorldEvent::Leave { client } = ev {
                gone[client] = true;
                sent_leaves += 1;
                // Single-threaded here, so instead of push_blocking
                // (which would spin with no consumer running) a full
                // ring drains inline — either way a leave is never
                // shed at this layer.
                while ring.try_push(ev) == Err(IngestError::RingFull { capacity: ring_cap }) {
                    drain(&ring, &mut buffer, &mut buffered, &mut drained_leaves);
                }
                sent += 1;
            } else if ring.push_or_shed(ev).unwrap() {
                sent += 1;
            }
            // Drain roughly half the time so the ring backpressure
            // path actually exercises.
            if rng.gen_bool(0.5) {
                drain(&ring, &mut buffer, &mut buffered, &mut drained_leaves);
            }
        }
        drain(&ring, &mut buffer, &mut buffered, &mut drained_leaves);
        // Every sent event is accounted for across the two layers.
        prop_assert_eq!(buffered + buffer.shed_events(), sent);
        // push_blocking never sheds, the buffer never sheds a leave:
        // every leave sent arrived.
        prop_assert_eq!(drained_leaves, sent_leaves);
        // The buffer never exceeded its bound by more than the leaves
        // admitted past it.
        prop_assert!(buffer.pending_entries() <= bound + drained_leaves as usize);
    }
}

/// Cross-thread SPSC smoke test: a real producer thread and this
/// consumer thread agree on order and content through the atomics (the
/// release/acquire publication protocol, exercised with contention).
#[test]
fn threaded_producer_consumer_agree() {
    let ring = Arc::new(IngestRing::with_capacity(8));
    let producer_ring = Arc::clone(&ring);
    let producer = std::thread::spawn(move || {
        for i in 0..5_000usize {
            producer_ring
                .push_blocking(WorldEvent::Move {
                    client: i,
                    zone: i % 7,
                })
                .unwrap();
        }
        producer_ring.close();
    });
    let mut expected = 0usize;
    let mut last_stamp = None;
    loop {
        match ring.pop() {
            Some(adm) => {
                assert_eq!(
                    adm.event,
                    WorldEvent::Move {
                        client: expected,
                        zone: expected % 7
                    }
                );
                if let Some(last) = last_stamp {
                    assert!(adm.admitted >= last, "stamps are monotone");
                }
                last_stamp = Some(adm.admitted);
                expected += 1;
            }
            None if ring.is_closed() && ring.is_empty() => break,
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(expected, 5_000);
    producer.join().unwrap();
}
