//! Property tests for the workload substrate.

use dve_world::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labels(nodes: usize, regions: usize) -> Vec<u16> {
    (0..nodes).map(|n| (n % regions.max(1)) as u16).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn world_generation_invariants(seed in any::<u64>(),
                                   servers in 1usize..10,
                                   zones in 1usize..30,
                                   clients in 0usize..200,
                                   delta in 0.0f64..1.0) {
        let mut config = ScenarioConfig::default();
        config.servers = servers;
        config.zones = zones;
        config.clients = clients;
        config.correlation = delta;
        config.total_capacity_bps = 500e6;
        config.min_capacity_bps = 1e6;
        let mut rng = StdRng::seed_from_u64(seed);
        let world = World::generate(&config, 100, &labels(100, 7), &mut rng).unwrap();
        prop_assert_eq!(world.servers.len(), servers);
        prop_assert_eq!(world.clients.len(), clients);
        // All placements in range.
        for s in &world.servers {
            prop_assert!(s.node < 100);
            prop_assert!(s.capacity_bps > 0.0);
        }
        for c in &world.clients {
            prop_assert!(c.node < 100);
            prop_assert!(c.zone < zones);
        }
        // Population conservation.
        prop_assert_eq!(world.zone_populations().iter().sum::<usize>(), clients);
        // Total capacity conserved.
        prop_assert!((world.total_capacity_bps() - 500e6).abs() < 1e3);
    }

    #[test]
    fn dynamics_population_arithmetic(seed in any::<u64>(),
                                      joins in 0usize..100,
                                      leaves in 0usize..100,
                                      moves in 0usize..100) {
        let mut config = ScenarioConfig::default();
        config.servers = 4;
        config.zones = 10;
        config.clients = 120;
        let mut rng = StdRng::seed_from_u64(seed);
        let world = World::generate(&config, 50, &labels(50, 5), &mut rng).unwrap();
        let batch = DynamicsBatch { joins, leaves, moves };
        let out = apply_dynamics(&world, &batch, 50, &mut rng);
        let expected = 120 - leaves.min(120) + joins;
        prop_assert_eq!(out.world.clients.len(), expected);
        prop_assert_eq!(out.carried_from.len(), expected);
        // Movers changed zone, survivors kept node.
        for &i in &out.moved {
            let old = out.carried_from[i].unwrap();
            prop_assert_ne!(out.world.clients[i].zone, world.clients[old].zone);
        }
        for (i, prov) in out.carried_from.iter().enumerate() {
            if let Some(old) = prov {
                prop_assert_eq!(out.world.clients[i].node, world.clients[*old].node);
            }
        }
    }

    #[test]
    fn error_model_band(d in 0.0f64..500.0, factor in 1.0f64..4.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = ErrorModel::new(factor);
        for _ in 0..50 {
            let v = e.observe(d, &mut rng);
            prop_assert!(v >= d / factor - 1e-9);
            prop_assert!(v <= d * factor + 1e-9);
        }
    }

    #[test]
    fn weighted_index_only_picks_positive_weights(seed in any::<u64>(),
                                                  n in 1usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Zero out every even index; samples must all be odd (unless all
        // weights would be zero, in which case keep index 1 positive).
        let weights: Vec<f64> = (0..n.max(2))
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let table = WeightedIndex::new(&weights);
        for _ in 0..100 {
            let pick = table.sample(&mut rng);
            prop_assert_eq!(pick % 2, 1, "picked zero-weight index {}", pick);
        }
    }

    #[test]
    fn notation_round_trip(servers in 1usize..100,
                           zones in 1usize..500,
                           clients in 0usize..5000,
                           cap in 1usize..2000) {
        let s = format!("{servers}s-{zones}z-{clients}c-{cap}cp");
        let config = ScenarioConfig::from_notation(&s).unwrap();
        prop_assert_eq!(config.notation(), s);
    }

    #[test]
    fn correlation_blocks_partition(zones in 1usize..100, regions in 1usize..30) {
        let model = CorrelationModel::new(zones, regions, 0.5);
        for r in 0..regions {
            let block = model.preferred_zones(r);
            prop_assert!(!block.is_empty());
            for &z in block {
                prop_assert!(z < zones);
            }
        }
    }
}
