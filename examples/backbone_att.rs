//! Real-backbone scenario: the paper also validated on "the US AT&T
//! continental IP backbone". This example runs the algorithms over the
//! embedded 25-PoP US backbone: servers sit in 5 metro PoPs, players
//! connect from all 25, and the correlation model maps US regions to
//! preferred zones.
//!
//! ```bash
//! cargo run --release --example backbone_att
//! ```

use dve::prelude::*;
use dve::topology::us_backbone_names;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1846); // the telegraph year
    let topo = us_backbone();
    let names = us_backbone_names();
    let delays = DelayMatrix::from_graph(&topo.graph, 120.0).expect("connected");
    println!(
        "US backbone: {} PoPs, {} links, max RTT {:.0} ms (continental fibre)\n",
        topo.node_count(),
        topo.graph.edge_count(),
        delays.max_rtt()
    );

    // A national game deployment: 5 servers, 30 zones, 600 players,
    // D = 60 ms (fast-paced FPS on a continental backbone).
    let mut scenario = ScenarioConfig::from_notation("5s-30z-600c-300cp").expect("notation");
    scenario.correlation = 0.6; // regional communities
    let world =
        World::generate(&scenario, topo.node_count(), &topo.as_of_node, &mut rng).expect("world");
    print!("server PoPs: ");
    for (k, s) in world.servers.iter().enumerate() {
        print!("{}{}", if k > 0 { ", " } else { "" }, names[s.node]);
    }
    println!("\n");

    let inst = CapInstance::build(&world, &delays, 0.5, 60.0, ErrorModel::KING, &mut rng);
    println!(
        "{:<12}{:>8}{:>8}{:>12}",
        "algorithm", "pQoS", "R", "forwarded"
    );
    for algo in CapAlgorithm::HEURISTICS {
        let a = solve(&inst, algo, StuckPolicy::BestEffort, &mut rng).expect("solve");
        let m = evaluate(&inst, &a);
        println!(
            "{:<12}{:>8.3}{:>8.3}{:>12}",
            algo.name(),
            m.pqos,
            m.utilization,
            m.forwarded_clients
        );
    }
}
