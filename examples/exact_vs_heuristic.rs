//! Optimality-gap study: on small configurations where the exact
//! branch-and-bound (the paper's lp_solve role) terminates, how close do
//! the heuristics get — in IAP cost and in end-to-end pQoS?
//!
//! Reproduces the paper's observation that "the pQoS values of GreZ-GreC
//! are close to the optimal results given by the branch-and-bound
//! algorithm", and its timing contrast (heuristics < 1 s, exact much
//! slower and only viable on small DVEs).
//!
//! ```bash
//! cargo run --release --example exact_vs_heuristic
//! ```

use dve::assign::{
    evaluate, exact_iap, grez, iap_total_cost, solve, BbConfig, CapAlgorithm, StuckPolicy,
};
use dve::prelude::HierarchicalConfig;
use dve::sim::{build_replication, SimSetup, TopologySpec};
use dve::world::ScenarioConfig;
use std::time::Instant;

fn main() {
    println!("exact vs heuristic on small DVEs (5 replications each)\n");
    for notation in ["5s-15z-200c-100cp", "10s-30z-400c-200cp"] {
        let setup = SimSetup {
            scenario: ScenarioConfig::from_notation(notation).expect("notation"),
            topology: TopologySpec::Hierarchical(HierarchicalConfig::default()),
            runs: 5,
            ..Default::default()
        };
        let mut gap_sum = 0.0;
        let mut pqos_h = 0.0;
        let mut pqos_x = 0.0;
        let mut t_heur = 0.0;
        let mut t_exact = 0.0;
        for i in 0..setup.runs {
            let mut rep = build_replication(&setup, i);

            let t0 = Instant::now();
            let h = solve(
                &rep.instance,
                CapAlgorithm::GreZGreC,
                StuckPolicy::BestEffort,
                &mut rep.rng,
            )
            .expect("heuristic");
            t_heur += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let x = solve(
                &rep.instance,
                CapAlgorithm::Exact,
                StuckPolicy::BestEffort,
                &mut rep.rng,
            )
            .expect("exact");
            t_exact += t0.elapsed().as_secs_f64();

            let grez_cost = iap_total_cost(
                &rep.instance,
                &grez(&rep.instance, StuckPolicy::BestEffort).expect("grez"),
            );
            let exact_cost = iap_total_cost(
                &rep.instance,
                &exact_iap(&rep.instance, &BbConfig::default()).expect("exact iap"),
            );
            gap_sum += grez_cost - exact_cost;
            pqos_h += evaluate(&rep.instance, &h).pqos;
            pqos_x += evaluate(&rep.instance, &x).pqos;
        }
        let runs = setup.runs as f64;
        println!("config {notation}:");
        println!(
            "  pQoS: GreZ-GreC {:.3} vs exact {:.3} (gap {:+.3})",
            pqos_h / runs,
            pqos_x / runs,
            pqos_x / runs - pqos_h / runs
        );
        println!(
            "  IAP cost excess of GreZ over optimum: {:.2} clients/run",
            gap_sum / runs
        );
        println!(
            "  mean time: heuristic {:.1} ms, exact {:.0} ms\n",
            t_heur / runs * 1e3,
            t_exact / runs * 1e3
        );
    }
}
