//! Flash-crowd drill: a zone suddenly becomes "hot" (an in-game event
//! pulls players in), QoS degrades, and the operator re-executes the
//! assignment algorithms to recover — the paper's Table 3 story pushed to
//! an extreme.
//!
//! Protocol:
//! 1. steady state: uniform population, GreZ-GreC assignment;
//! 2. flash crowd: 30% of players move into one zone (plus churn);
//! 3. measure pQoS *before* re-execution (carried assignment);
//! 4. re-execute each algorithm and measure recovery.
//!
//! ```bash
//! cargo run --release --example flash_crowd
//! ```

use dve::assign::{evaluate, solve, CapAlgorithm, CapInstance, StuckPolicy};
use dve::prelude::*;
use dve::sim::{build_replication, carry_assignment, CarryPolicy, SimSetup};
use dve::world::apply_dynamics;
use dve::world::DynamicsBatch;
use rand::Rng;

fn main() {
    let setup = SimSetup::default(); // 20s-80z-1000c-500cp
    let mut rep = build_replication(&setup, 7);

    // Steady state.
    let steady = solve(
        &rep.instance,
        CapAlgorithm::GreZGreC,
        StuckPolicy::BestEffort,
        &mut rep.rng,
    )
    .expect("solve");
    let m0 = evaluate(&rep.instance, &steady);
    println!(
        "steady state: pQoS {:.3}, utilisation {:.3}",
        m0.pqos, m0.utilization
    );

    // Flash crowd: pick the busiest zone and march 30% of all players in,
    // with some background churn (simulated via joins/leaves).
    let hot_zone = {
        let pops = rep.world.zone_populations();
        (0..pops.len()).max_by_key(|&z| pops[z]).unwrap()
    };
    let churn = DynamicsBatch {
        joins: 50,
        leaves: 50,
        moves: 0,
    };
    let mut outcome = apply_dynamics(&rep.world, &churn, rep.topology.node_count(), &mut rep.rng);
    let n = outcome.world.clients.len();
    let mut stormers = 0;
    for i in 0..n {
        if stormers >= n * 3 / 10 {
            break;
        }
        if outcome.world.clients[i].zone != hot_zone && rep.rng.gen::<f64>() < 0.35 {
            outcome.world.clients[i].zone = hot_zone;
            stormers += 1;
        }
    }
    println!("flash crowd: {stormers} players storm zone {hot_zone} (+50 join, -50 leave)");

    let crowd_instance = CapInstance::from_world(
        &outcome.world,
        &rep.delays,
        0.5,
        250.0,
        ErrorModel::PERFECT,
        DelayLayout::Dense64,
        &mut rep.rng,
    );
    let old_zone_of: Vec<usize> = rep.world.clients.iter().map(|c| c.zone).collect();
    let carried = carry_assignment(
        &steady,
        &outcome.carried_from,
        &old_zone_of,
        &crowd_instance,
        CarryPolicy::KeepContact,
    );
    let m1 = evaluate(&crowd_instance, &carried);
    println!(
        "after crowd (no re-execution): pQoS {:.3}, utilisation {:.3}, feasible: {}\n",
        m1.pqos,
        m1.utilization,
        carried.is_feasible(&crowd_instance)
    );

    println!("{:<12}{:>10}{:>14}", "re-run with", "pQoS", "utilisation");
    for algo in CapAlgorithm::HEURISTICS {
        let fresh = solve(&crowd_instance, algo, StuckPolicy::BestEffort, &mut rep.rng)
            .expect("heuristics cannot fail");
        let m = evaluate(&crowd_instance, &fresh);
        println!("{:<12}{:>10.3}{:>14.3}", algo.name(), m.pqos, m.utilization);
    }
}
