//! Flash-crowd drill, served live: the same storm as
//! `examples/flash_crowd.rs` — 30% of players pile into one hot zone
//! with join/leave churn on top — but instead of re-executing the
//! solver against a rebuilt snapshot, every event travels the ingest
//! path: a producer thread speaks into the SPSC `IngestRing`, and the
//! engine-side pull loop drains it through the coalesce-or-shed
//! boundary into incremental repairs.
//!
//! The interesting numbers are the ones a batch re-solve cannot give
//! you: arrival-to-commit latency quantiles under the burst, and the
//! shed accounting (moves may shed under pressure; leaves never do).
//!
//! ```bash
//! cargo run --release --example flash_crowd_live
//! ```

use dve::assign::StuckPolicy;
use dve::sim::{
    build_replication, run_ingest_stream, IngestConfig, ServeConfig, ServeEngine, SimSetup,
};
use dve::world::{ErrorModel, IngestRing, WorldEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let setup = SimSetup::default(); // 20s-80z-1000c-500cp
    let rep = build_replication(&setup, 7);
    let world = rep.world;
    let zones = world.zones;
    let clients = world.clients.len();

    let mut engine = ServeEngine::new(
        rep.instance,
        &world,
        rep.delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        rep.rng,
    )
    .expect("steady state solves");
    println!(
        "steady state: {} clients, pQoS {:.3}, feasible {}",
        engine.num_clients(),
        engine.metrics().pqos,
        engine.is_feasible()
    );

    // The storm script, against stable wire ids (the initial population
    // is 0..clients): 30% of players march into the busiest zone, plus
    // +50 joins and -50 leaves of background churn.
    let hot_zone = {
        let pops = world.zone_populations();
        (0..pops.len()).max_by_key(|&z| pops[z]).unwrap()
    };
    let nodes = engine.nodes();
    let mut rng = StdRng::seed_from_u64(7);
    let mut script: Vec<WorldEvent> = Vec::new();
    let mut stormers = 0usize;
    for client in 0..clients {
        if stormers >= clients * 3 / 10 {
            break;
        }
        if world.clients[client].zone != hot_zone && rng.gen::<f64>() < 0.35 {
            script.push(WorldEvent::Move {
                client,
                zone: hot_zone,
            });
            stormers += 1;
        }
    }
    for _ in 0..50 {
        script.push(WorldEvent::Join {
            node: rng.gen_range(0..nodes),
            zone: rng.gen_range(0..zones),
        });
    }
    let mut left = vec![false; clients];
    let mut departures = 0usize;
    while departures < 50 {
        let client = rng.gen_range(0..clients);
        if !left[client] {
            left[client] = true;
            script.push(WorldEvent::Leave { client });
            departures += 1;
        }
    }
    println!(
        "flash crowd: {stormers} players storm zone {hot_zone} (+50 join, -50 leave), {} events",
        script.len()
    );

    // Serve it live: producer thread → ring → pull loop → engine.
    let ring = Arc::new(IngestRing::with_capacity(1024));
    let producer_ring = Arc::clone(&ring);
    let producer = std::thread::spawn(move || {
        for ev in script {
            match ev {
                // Departures must always land; moves and joins may shed
                // under backpressure.
                WorldEvent::Leave { .. } => producer_ring.push_blocking(ev).unwrap(),
                _ => {
                    producer_ring.push_or_shed(ev).unwrap();
                }
            }
        }
        producer_ring.close();
    });
    let report = run_ingest_stream(&mut engine, &ring, &world, 512, IngestConfig::default());
    producer.join().unwrap();

    let stats = engine.stats();
    println!(
        "served: arrivals {}  committed {}  flushes {}  coalesced {}  dropped {}",
        report.arrivals, report.committed, report.flushes, report.coalesced, report.dropped
    );
    println!(
        "shed: ring {}  buffer {}  leaves {} (must be 0)",
        ring.shed_events(),
        report.shed,
        report.shed_leaves
    );
    println!(
        "arrival-to-commit: mean {:.3} ms  p99 {:.3} ms  p99.9 {:.3} ms ({} samples)",
        stats.latency.mean_ns() / 1e6,
        stats.latency.quantile_upper_ns(0.99) as f64 / 1e6,
        stats.latency.quantile_upper_ns(0.999) as f64 / 1e6,
        stats.latency.count()
    );
    println!(
        "after crowd (served, no re-execution): population {}  pQoS {:.3}  feasible {}",
        engine.num_clients(),
        engine.metrics().pqos,
        engine.is_feasible()
    );
    assert_eq!(report.shed_leaves, 0, "a departure must never shed");
}
