//! MMOG shard-planning study: how many geographically distributed servers
//! (and how much total bandwidth) does an operator need to keep 95% of
//! players within the interactivity bound?
//!
//! This is the kind of question the paper's introduction motivates
//! (Everquest/Ultima-style MMOGs on distributed server architectures).
//! We sweep server counts and capacities for a 2000-player world and
//! report the cheapest configuration meeting the QoS target under the
//! best heuristic (GreZ-GreC).
//!
//! ```bash
//! cargo run --release --example mmog_shard_planner
//! ```

use dve::prelude::*;
use dve::sim::{run_experiment, SimSetup, TopologySpec};

fn main() {
    let target_pqos = 0.95;
    println!("MMOG shard planner: 2000 players, 160 zones, D = 250 ms");
    println!(
        "QoS target: {:.0}% of players within the bound\n",
        target_pqos * 100.0
    );
    println!(
        "{:<10}{:>14}{:>12}{:>10}{:>8}",
        "servers", "capacity(Mbps)", "GreZ-GreC", "RanZ-VirC", "met?"
    );

    // (cost, servers, capacity) of the best QoS-meeting deployment.
    let mut cheapest: Option<(f64, usize, f64)> = None;
    for servers in [10usize, 20, 30, 40] {
        for capacity_mbps in [600.0, 800.0, 1000.0] {
            let mut scenario = ScenarioConfig::default();
            scenario.servers = servers;
            scenario.zones = 160;
            scenario.clients = 2000;
            scenario.total_capacity_bps = capacity_mbps * 1e6;
            let setup = SimSetup {
                scenario,
                topology: TopologySpec::Hierarchical(HierarchicalConfig::default()),
                runs: 5,
                ..Default::default()
            };
            let stats = run_experiment(
                &setup,
                &[CapAlgorithm::GreZGreC, CapAlgorithm::RanZVirC],
                StuckPolicy::BestEffort,
            );
            let best = stats[0].pqos.mean;
            let baseline = stats[1].pqos.mean;
            let met = best >= target_pqos;
            println!(
                "{:<10}{:>14.0}{:>12.3}{:>10.3}{:>8}",
                servers,
                capacity_mbps,
                best,
                baseline,
                if met { "yes" } else { "no" }
            );
            if met {
                let cost = servers as f64 * 1.0 + capacity_mbps / 1000.0; // toy cost model
                if cheapest.is_none_or(|(c, _, _)| cost < c) {
                    cheapest = Some((cost, servers, capacity_mbps));
                }
            }
        }
    }

    match cheapest {
        Some((_, servers, capacity)) => println!(
            "\ncheapest QoS-meeting deployment: {servers} servers, {capacity:.0} Mbps total"
        ),
        None => println!("\nno swept configuration met the target — add servers or capacity"),
    }
}
