//! Quickstart: the full pipeline in ~40 lines.
//!
//! Generates a BRITE-style topology, populates the paper's default DVE
//! scenario (20 servers, 80 zones, 1000 clients, 500 Mbps), runs all four
//! heuristics, and prints pQoS / utilisation / delay percentiles.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dve::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2006);

    // 1. Internet-like topology: 20 AS x 25 routers (the paper's BRITE
    //    configuration), RTTs scaled to a 500 ms maximum.
    let topo = hierarchical(&HierarchicalConfig::default(), &mut rng);
    let delays = DelayMatrix::from_graph(&topo.graph, 500.0).expect("connected");
    println!(
        "topology: {} nodes, {} edges, mean RTT {:.0} ms",
        topo.node_count(),
        topo.graph.edge_count(),
        delays.mean_rtt()
    );

    // 2. The paper's default scenario: 20s-80z-1000c-500cp, delta = 0.5.
    let scenario = ScenarioConfig::default();
    let world = World::generate(&scenario, topo.node_count(), &topo.as_of_node, &mut rng)
        .expect("world generation");
    println!(
        "world: {} clients in {} zones on {} servers ({})",
        world.clients.len(),
        world.zones,
        world.servers.len(),
        scenario.notation()
    );

    // 3. Build the CAP instance: D = 250 ms, inter-server links at 50%
    //    latency, perfect delay knowledge.
    let inst = CapInstance::build(&world, &delays, 0.5, 250.0, ErrorModel::PERFECT, &mut rng);

    // 4. Solve with each named algorithm and report.
    println!(
        "\n{:<12}{:>8}{:>8}{:>12}{:>12}",
        "algorithm", "pQoS", "R", "p50 delay", "p95 delay"
    );
    for algo in CapAlgorithm::HEURISTICS {
        let assignment =
            solve(&inst, algo, StuckPolicy::BestEffort, &mut rng).expect("heuristics cannot fail");
        let m = evaluate(&inst, &assignment);
        let mut d = m.delays.clone();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| d[(p * (d.len() - 1) as f64) as usize];
        println!(
            "{:<12}{:>8.3}{:>8.3}{:>10.0}ms{:>10.0}ms",
            algo.name(),
            m.pqos,
            m.utilization,
            pct(0.5),
            pct(0.95),
        );
    }
}
