//! Server-failure drill: a server dies mid-stream (m→m−1), its zones
//! and relays are mass-evacuated through the live serve path, and two
//! epochs later it comes back (m→m−1→m) — the inverse of the flash
//! crowd, measured as a recovery trajectory instead of a re-solve.
//!
//! Protocol:
//! 1. steady streaming: the paper's Table 3 churn mix per epoch;
//! 2. at the schedule midpoint one seeded server fails — capacity
//!    retired, hosted zones evacuated largest-first, relays shed;
//! 3. churn keeps arriving on the degraded engine (admission control
//!    defers joins over the headroom line instead of overloading
//!    survivors);
//! 4. the server recovers — the re-admission sweep pulls zones back
//!    and the deferred joins drain;
//! 5. the report says how deep quality dipped and how many serving
//!    events it took to climb back to 0.9x the pre-failure baseline.
//!
//! ```bash
//! cargo run --release --example server_failure
//! ```

use dve::assign::StuckPolicy;
use dve::sim::{
    run_recovery_stream, AdmissionPolicy, DegradationPolicy, QualityEstimator, ServeConfig,
    SimSetup,
};
use dve::world::{DynamicsBatch, FaultKind, FaultSchedule};

fn main() {
    let setup = SimSetup {
        base_seed: 7,
        runs: 1,
        ..Default::default() // 20s-80z-1000c-500cp
    };
    let ticks = 10;
    let schedule = FaultSchedule::generate(
        FaultKind::FailRecover { down_for: 2 },
        setup.scenario.servers,
        ticks,
        7,
    );
    let victim = schedule.downed_servers()[0];
    let down_at = schedule.first_failure_tick().expect("schedule fails");
    println!(
        "schedule: server {victim} fails at epoch {down_at}, recovers at epoch {} \
         ({} servers, {ticks} epochs of 200j/200l/200m churn)\n",
        down_at + 2,
        setup.scenario.servers,
    );

    let config = ServeConfig {
        degradation: DegradationPolicy {
            admission: AdmissionPolicy::Queue,
            headroom: 0.05,
            max_pending: Some(256),
        },
        ..Default::default()
    };
    let report = run_recovery_stream(
        &setup,
        0,
        &DynamicsBatch::paper_default(),
        &schedule,
        StuckPolicy::BestEffort,
        config,
        QualityEstimator::Exact,
        0.9,
    )
    .expect("default tier solves");

    println!(
        "{:<7}{:>9}{:>9}{:>7}{:>10}{:>10}{:>9}",
        "epoch", "clients", "pQoS", "down", "deferred", "migrated", "repairs"
    );
    for r in &report.records {
        let marker = match (r.epoch == down_at, r.down_servers > 0) {
            (true, _) => "  <- failure",
            (false, true) => "  (degraded)",
            _ if r.epoch > down_at => "  (recovered)",
            _ => "",
        };
        println!(
            "{:<7}{:>9}{:>9.4}{:>7}{:>10}{:>10}{:>9}{marker}",
            r.epoch,
            r.clients,
            r.pqos,
            r.down_servers,
            r.deferred_joins,
            r.zones_migrated,
            r.full_repairs
        );
    }

    println!(
        "\npre-failure pQoS {:.4}, trough {:.4}, recovered at epoch {:?} \
         ({:?} serving events after the failure)",
        report.pre_pqos, report.trough_pqos, report.recovered_at, report.events_to_recover,
    );
    println!(
        "engine counters: {} failover(s), {} recovery(ies), {} zones migrated, \
         {} joins deferred, {} events shed, {} full repairs",
        report.stats.failovers,
        report.stats.recoveries,
        report.stats.zones_migrated,
        report.stats.queued_joins,
        report.stats.shed_events,
        report.stats.full_repairs,
    );
}
