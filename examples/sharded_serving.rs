//! Zone-sharded serving: the same churn trace served by the plain
//! single-shard engine and by [`ShardedServeEngine`] at width 4, to
//! show the two properties the sharded path guarantees:
//!
//! 1. **Bit-identical decisions at any width** — every epoch record
//!    (population, pQoS, migrations, repairs, flushes) matches the
//!    single-shard run exactly, because shards only *propose* in
//!    parallel from a frozen snapshot and one serial pass commits in
//!    canonical zone order;
//! 2. **Per-shard observability** — each shard owns its zones' share
//!    of the load books and its own latency histogram, so per-shard
//!    event counts and tails come for free (zone `z` lives on shard
//!    `z % shards`).
//!
//! Wall-clock speedup is *not* visible here: it needs real cores
//! (the `serve_mc` bench and the `scale-mc` CI job gate ≥2× at
//! width ≥ 4). What this example demonstrates is that width is free
//! of decision risk — you can turn it up without changing a single
//! assignment.
//!
//! ```bash
//! cargo run --release --example sharded_serving
//! ```

use dve::assign::StuckPolicy;
use dve::sim::{run_stream, run_stream_sharded, ServeConfig, SimSetup};
use dve::world::DynamicsBatch;

fn main() {
    let setup = SimSetup {
        base_seed: 11,
        runs: 1,
        ..Default::default() // 20s-80z-1000c-500cp
    };
    let batch = DynamicsBatch::paper_default();
    let epochs = 6;
    let shards = 4;

    let single = run_stream(
        &setup,
        0,
        &batch,
        epochs,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
    )
    .expect("default tier solves");
    let (sharded, books) = run_stream_sharded(
        &setup,
        0,
        &batch,
        epochs,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        shards,
    )
    .expect("default tier solves");

    println!(
        "{:<7}{:>9}{:>9}{:>10}{:>9}{:>9}   identical?",
        "epoch", "clients", "pQoS", "migrated", "repairs", "flushes"
    );
    for (s, w) in single.records.iter().zip(&sharded.records) {
        println!(
            "{:<7}{:>9}{:>9.4}{:>10}{:>9}{:>9}   {}",
            w.epoch,
            w.clients,
            w.pqos,
            w.zones_migrated,
            w.full_repairs,
            w.flushes,
            if s == w { "yes" } else { "NO" },
        );
        assert_eq!(s, w, "sharded serving must be decision-identical");
    }

    println!("\nper-shard books (zone z -> shard z % {shards}):");
    for (i, book) in books.iter().enumerate() {
        println!(
            "  shard {i}: {:>6} events, mean commit {:>8.1} us ({} samples)",
            book.events,
            book.latency.mean_ns() / 1e3,
            book.latency.count(),
        );
    }
    let routed: u64 = books.iter().map(|b| b.events).sum();
    assert_eq!(routed, sharded.stats.events, "every event routed");

    println!(
        "\nlifetime: {} events, {} flushes, {} zones migrated, {} full repairs \
         -- identical across widths by construction",
        sharded.stats.events,
        sharded.stats.flushes,
        sharded.stats.zones_migrated,
        sharded.stats.full_repairs,
    );
}
