//! `dvecap` — command-line front end to the dve-cap workspace.
//!
//! ```text
//! dvecap topology  [--kind hierarchical|transit-stub|waxman|backbone] [--seed S]
//! dvecap solve     <notation> [--algo NAME] [--delay-bound MS] [--correlation D]
//!                  [--error E] [--seed S]
//! dvecap bounds    <notation> [--seed S]
//! dvecap experiment <table1|fig4|fig5|fig6|table3|table4|ablation|repair|topologies>
//!                  [--runs N] [--exact-runs N] [--seed S] [--quick]
//! ```

use dve::assign::{
    evaluate, iap_lower_bound, iap_lp_bound, iap_total_cost, solve, CapAlgorithm, CapInstance,
    StuckPolicy,
};
use dve::sim::experiments::{
    ablation, fig4, fig5, fig6, repair_study, table1, table3, table4, topologies, ExpOptions,
};
use dve::sim::{build_replication, SimSetup, TopologySpec};
use dve::topology::{
    hierarchical, transit_stub, us_backbone, waxman_incremental, HierarchicalConfig, Topology,
    TopologyKind, TopologyStats, TransitStubConfig, WaxmanParams,
};
use dve::world::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dvecap topology [--kind hierarchical|transit-stub|waxman|backbone] [--seed S]\n  \
         dvecap solve <notation> [--algo NAME] [--delay-bound MS] [--correlation D] [--error E] [--seed S]\n  \
         dvecap bounds <notation> [--seed S]\n  \
         dvecap experiment <table1|fig4|fig5|fig6|table3|table4|ablation|repair|topologies> [--runs N] [--quick]"
    );
    ExitCode::from(2)
}

/// Splits argv into positional arguments and `--flag value` pairs
/// (`--quick` is a bare flag).
fn parse(args: &[String]) -> Option<(Vec<String>, HashMap<String, String>)> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "quick" {
                flags.insert("quick".to_string(), "1".to_string());
            } else {
                let value = it.next()?;
                flags.insert(name.to_string(), value.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    Some((positional, flags))
}

fn flag_parse<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: bad value for --{name}, using default");
            std::process::exit(2)
        }),
        None => default,
    }
}

fn cmd_topology(flags: &HashMap<String, String>) -> ExitCode {
    let seed: u64 = flag_parse(flags, "seed", 42);
    let kind = flags
        .get("kind")
        .map(String::as_str)
        .unwrap_or("hierarchical");
    let mut rng = StdRng::seed_from_u64(seed);
    let topo: Topology = match kind {
        "hierarchical" => hierarchical(&HierarchicalConfig::default(), &mut rng),
        "transit-stub" => transit_stub(&TransitStubConfig::default(), &mut rng),
        "waxman" => dve::topology::Topology {
            graph: waxman_incremental(500, 2, 1000.0, WaxmanParams::default(), &mut rng),
            as_of_node: vec![0; 500],
            kind: TopologyKind::FlatWaxman,
        },
        "backbone" => us_backbone(),
        other => {
            eprintln!("unknown topology kind {other:?}");
            return usage();
        }
    };
    let stats = TopologyStats::compute(&topo.graph);
    println!("kind:                 {kind}");
    println!("nodes:                {}", stats.nodes);
    println!("edges:                {}", stats.edges);
    println!("AS domains:           {}", topo.as_count());
    println!(
        "degree (min/mean/max): {} / {:.2} / {}",
        stats.min_degree, stats.mean_degree, stats.max_degree
    );
    println!("clustering:           {:.3}", stats.clustering);
    println!("top-decile degree:    {:.3}", stats.top_decile_degree_share);
    println!(
        "distance (mean/diam):  {:.1} / {:.1} (plane units)",
        stats.mean_distance, stats.diameter
    );
    ExitCode::SUCCESS
}

fn build_instance(
    notation: &str,
    flags: &HashMap<String, String>,
) -> Option<(CapInstance, StdRng)> {
    let mut scenario = match ScenarioConfig::from_notation(notation) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return None;
        }
    };
    scenario.correlation = flag_parse(flags, "correlation", scenario.correlation);
    let setup = SimSetup {
        scenario,
        topology: TopologySpec::Hierarchical(HierarchicalConfig::default()),
        delay_bound_ms: flag_parse(flags, "delay-bound", 250.0),
        error_factor: flag_parse(flags, "error", 1.0),
        base_seed: flag_parse(flags, "seed", 42),
        runs: 1,
        ..Default::default()
    };
    let rep = build_replication(&setup, 0);
    Some((rep.instance, rep.rng))
}

fn cmd_solve(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(notation) = positional.first() else {
        return usage();
    };
    let Some((inst, mut rng)) = build_instance(notation, flags) else {
        return ExitCode::from(2);
    };
    let wanted = flags.get("algo").map(String::as_str);
    let algos: Vec<CapAlgorithm> = match wanted {
        None => CapAlgorithm::HEURISTICS.to_vec(),
        Some(name) => {
            let all: Vec<CapAlgorithm> = CapAlgorithm::HEURISTICS
                .into_iter()
                .chain([CapAlgorithm::Exact])
                .collect();
            match all
                .into_iter()
                .find(|a| a.name().eq_ignore_ascii_case(name) || name == "exact")
            {
                Some(a) => vec![a],
                None => {
                    eprintln!("unknown algorithm {name:?}; use RanZ-VirC, RanZ-GreC, GreZ-VirC, GreZ-GreC or exact");
                    return ExitCode::from(2);
                }
            }
        }
    };
    println!(
        "{:<12}{:>8}{:>8}{:>12}{:>12}",
        "algorithm", "pQoS", "R", "forwarded", "feasible"
    );
    for algo in algos {
        match solve(&inst, algo, StuckPolicy::BestEffort, &mut rng) {
            Ok(a) => {
                let m = evaluate(&inst, &a);
                println!(
                    "{:<12}{:>8.3}{:>8.3}{:>12}{:>12}",
                    algo.name(),
                    m.pqos,
                    m.utilization,
                    m.forwarded_clients,
                    a.is_feasible(&inst)
                );
            }
            Err(e) => println!("{:<12}failed: {e}", algo.name()),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bounds(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(notation) = positional.first() else {
        return usage();
    };
    let Some((inst, _)) = build_instance(notation, flags) else {
        return ExitCode::from(2);
    };
    let grez_cost = dve::assign::grez(&inst, StuckPolicy::BestEffort)
        .map(|t| iap_total_cost(&inst, &t))
        .unwrap_or(f64::NAN);
    println!("IAP cost bounds for {notation} (clients without QoS after phase 1):");
    println!("  capacity-free bound: {:.1}", iap_lower_bound(&inst));
    match iap_lp_bound(&inst) {
        Some(b) => println!("  LP relaxation bound: {b:.1}"),
        None => println!("  LP relaxation bound: infeasible"),
    }
    println!("  GreZ heuristic:      {grez_cost:.1}");
    ExitCode::SUCCESS
}

fn cmd_experiment(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(which) = positional.first() else {
        return usage();
    };
    let mut options = ExpOptions::default();
    if flags.contains_key("quick") {
        options = ExpOptions::quick();
    }
    options.runs = flag_parse(flags, "runs", options.runs);
    options.exact_runs = flag_parse(flags, "exact-runs", options.exact_runs);
    options.base_seed = flag_parse(flags, "seed", options.base_seed);
    let rendered = match which.as_str() {
        "table1" => table1::run(&options, 2).render(),
        "fig4" => fig4::run(&options).render(),
        "fig5" => fig5::run(&options).render(),
        "fig6" => fig6::run(&options).render(),
        "table3" => table3::run(&options).render(),
        "table4" => table4::run(&options).render(),
        "ablation" => ablation::run(&options).render(),
        "repair" => repair_study::run(&options).render(),
        "topologies" => topologies::run(&options).render(),
        other => {
            eprintln!("unknown experiment {other:?}");
            return usage();
        }
    };
    println!("{rendered}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((positional, flags)) = parse(&args) else {
        return usage();
    };
    let Some(command) = positional.first() else {
        return usage();
    };
    let rest = &positional[1..];
    match command.as_str() {
        "topology" => cmd_topology(&flags),
        "solve" => cmd_solve(rest, &flags),
        "bounds" => cmd_bounds(rest, &flags),
        "experiment" => cmd_experiment(rest, &flags),
        _ => usage(),
    }
}
