//! `dvecap` — command-line front end to the dve-cap workspace.
//!
//! ```text
//! dvecap topology  [--kind hierarchical|transit-stub|waxman|backbone] [--seed S]
//! dvecap solve     <notation> [--algo NAME] [--delay-bound MS] [--correlation D]
//!                  [--error E] [--seed S]
//! dvecap bounds    <notation> [--seed S]
//! dvecap experiment <table1|fig4|fig5|fig6|table3|table4|ablation|repair|topologies>
//!                  [--runs N] [--exact-runs N] [--seed S] [--quick]
//! dvecap serve     <notation> [--port P] [--ring N] [--bound N] [--max-batch N]
//!                  [--max-staleness-ms F] [--shards N] [--connections N] [--seed S]
//! ```
//!
//! `serve` boots the streaming engine on the scenario, listens on
//! 127.0.0.1 for connections speaking the `dve_world::wire`
//! length-prefixed protocol (specified in `docs/WIRE.md`), and drains
//! decoded events through the ingest ring into the engine — the
//! line-rate front end. `--connections N` (default 1) accepts N
//! sequential connections against the same serve loop: each producer's
//! events land in the same ring and engine, and the session summary
//! covers the whole sequence. `--shards N` (default 1) serves on a
//! zone-sharded engine over a persistent N-worker team — decisions are
//! bit-identical to the unsharded engine, and the session summary adds
//! per-shard event books, concurrent-flush propose latencies, and the
//! max/min shard-event imbalance. `--max-batch` and `--max-staleness-ms` mirror
//! the fields of `dve_sim::IngestConfig` and default to its
//! `Default` values (1024 arrivals, 1 ms), which is the single source
//! of truth for the flush policy. On the wire,
//! clients are addressed by stable id (the engine's discipline: the
//! initial population is `0..k`); joiner ids are not echoed back in
//! this version, so a connection can address only the initial
//! population. The session summary (arrival-to-commit latency
//! quantiles, shed counters, final pQoS) prints when the producer hangs
//! up.

use dve::assign::{
    evaluate, iap_lower_bound, iap_lp_bound, iap_total_cost, solve, CapAlgorithm, CapInstance,
    StuckPolicy,
};
use dve::sim::experiments::{
    ablation, fig4, fig5, fig6, repair_study, table1, table3, table4, topologies, ExpOptions,
};
use dve::sim::{
    build_replication, run_ingest_stream, IngestConfig, ServeConfig, ServeEngine, ServeSink,
    ShardedServeEngine, SimSetup, TopologySpec,
};
use dve::topology::{
    hierarchical, transit_stub, us_backbone, waxman_incremental, HierarchicalConfig, Topology,
    TopologyKind, TopologyStats, TransitStubConfig, WaxmanParams,
};
use dve::world::wire::FrameReader;
use dve::world::{ErrorModel, IngestRing, ScenarioConfig, WorldEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Read;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dvecap topology [--kind hierarchical|transit-stub|waxman|backbone] [--seed S]\n  \
         dvecap solve <notation> [--algo NAME] [--delay-bound MS] [--correlation D] [--error E] [--seed S]\n  \
         dvecap bounds <notation> [--seed S]\n  \
         dvecap experiment <table1|fig4|fig5|fig6|table3|table4|ablation|repair|topologies> [--runs N] [--quick]\n  \
         dvecap serve <notation> [--port P] [--ring N] [--bound N] [--max-batch N] [--max-staleness-ms F] [--shards N] [--connections N] [--seed S]"
    );
    ExitCode::from(2)
}

/// Splits argv into positional arguments and `--flag value` pairs
/// (`--quick` is a bare flag).
fn parse(args: &[String]) -> Option<(Vec<String>, HashMap<String, String>)> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "quick" {
                flags.insert("quick".to_string(), "1".to_string());
            } else {
                let value = it.next()?;
                flags.insert(name.to_string(), value.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    Some((positional, flags))
}

fn flag_parse<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: bad value for --{name}, using default");
            std::process::exit(2)
        }),
        None => default,
    }
}

fn cmd_topology(flags: &HashMap<String, String>) -> ExitCode {
    let seed: u64 = flag_parse(flags, "seed", 42);
    let kind = flags
        .get("kind")
        .map(String::as_str)
        .unwrap_or("hierarchical");
    let mut rng = StdRng::seed_from_u64(seed);
    let topo: Topology = match kind {
        "hierarchical" => hierarchical(&HierarchicalConfig::default(), &mut rng),
        "transit-stub" => transit_stub(&TransitStubConfig::default(), &mut rng),
        "waxman" => dve::topology::Topology {
            graph: waxman_incremental(500, 2, 1000.0, WaxmanParams::default(), &mut rng),
            as_of_node: vec![0; 500],
            kind: TopologyKind::FlatWaxman,
        },
        "backbone" => us_backbone(),
        other => {
            eprintln!("unknown topology kind {other:?}");
            return usage();
        }
    };
    let stats = TopologyStats::compute(&topo.graph);
    println!("kind:                 {kind}");
    println!("nodes:                {}", stats.nodes);
    println!("edges:                {}", stats.edges);
    println!("AS domains:           {}", topo.as_count());
    println!(
        "degree (min/mean/max): {} / {:.2} / {}",
        stats.min_degree, stats.mean_degree, stats.max_degree
    );
    println!("clustering:           {:.3}", stats.clustering);
    println!("top-decile degree:    {:.3}", stats.top_decile_degree_share);
    println!(
        "distance (mean/diam):  {:.1} / {:.1} (plane units)",
        stats.mean_distance, stats.diameter
    );
    ExitCode::SUCCESS
}

fn build_instance(
    notation: &str,
    flags: &HashMap<String, String>,
) -> Option<(CapInstance, StdRng)> {
    let mut scenario = match ScenarioConfig::from_notation(notation) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return None;
        }
    };
    scenario.correlation = flag_parse(flags, "correlation", scenario.correlation);
    let setup = SimSetup {
        scenario,
        topology: TopologySpec::Hierarchical(HierarchicalConfig::default()),
        delay_bound_ms: flag_parse(flags, "delay-bound", 250.0),
        error_factor: flag_parse(flags, "error", 1.0),
        base_seed: flag_parse(flags, "seed", 42),
        runs: 1,
        ..Default::default()
    };
    let rep = build_replication(&setup, 0);
    Some((rep.instance, rep.rng))
}

fn cmd_solve(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(notation) = positional.first() else {
        return usage();
    };
    let Some((inst, mut rng)) = build_instance(notation, flags) else {
        return ExitCode::from(2);
    };
    let wanted = flags.get("algo").map(String::as_str);
    let algos: Vec<CapAlgorithm> = match wanted {
        None => CapAlgorithm::HEURISTICS.to_vec(),
        Some(name) => {
            let all: Vec<CapAlgorithm> = CapAlgorithm::HEURISTICS
                .into_iter()
                .chain([CapAlgorithm::Exact])
                .collect();
            match all
                .into_iter()
                .find(|a| a.name().eq_ignore_ascii_case(name) || name == "exact")
            {
                Some(a) => vec![a],
                None => {
                    eprintln!("unknown algorithm {name:?}; use RanZ-VirC, RanZ-GreC, GreZ-VirC, GreZ-GreC or exact");
                    return ExitCode::from(2);
                }
            }
        }
    };
    println!(
        "{:<12}{:>8}{:>8}{:>12}{:>12}",
        "algorithm", "pQoS", "R", "forwarded", "feasible"
    );
    for algo in algos {
        match solve(&inst, algo, StuckPolicy::BestEffort, &mut rng) {
            Ok(a) => {
                let m = evaluate(&inst, &a);
                println!(
                    "{:<12}{:>8.3}{:>8.3}{:>12}{:>12}",
                    algo.name(),
                    m.pqos,
                    m.utilization,
                    m.forwarded_clients,
                    a.is_feasible(&inst)
                );
            }
            Err(e) => println!("{:<12}failed: {e}", algo.name()),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bounds(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(notation) = positional.first() else {
        return usage();
    };
    let Some((inst, _)) = build_instance(notation, flags) else {
        return ExitCode::from(2);
    };
    let grez_cost = dve::assign::grez(&inst, StuckPolicy::BestEffort)
        .map(|t| iap_total_cost(&inst, &t))
        .unwrap_or(f64::NAN);
    println!("IAP cost bounds for {notation} (clients without QoS after phase 1):");
    println!("  capacity-free bound: {:.1}", iap_lower_bound(&inst));
    match iap_lp_bound(&inst) {
        Some(b) => println!("  LP relaxation bound: {b:.1}"),
        None => println!("  LP relaxation bound: infeasible"),
    }
    println!("  GreZ heuristic:      {grez_cost:.1}");
    ExitCode::SUCCESS
}

fn cmd_experiment(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(which) = positional.first() else {
        return usage();
    };
    let mut options = ExpOptions::default();
    if flags.contains_key("quick") {
        options = ExpOptions::quick();
    }
    options.runs = flag_parse(flags, "runs", options.runs);
    options.exact_runs = flag_parse(flags, "exact-runs", options.exact_runs);
    options.base_seed = flag_parse(flags, "seed", options.base_seed);
    let rendered = match which.as_str() {
        "table1" => table1::run(&options, 2).render(),
        "fig4" => fig4::run(&options).render(),
        "fig5" => fig5::run(&options).render(),
        "fig6" => fig6::run(&options).render(),
        "table3" => table3::run(&options).render(),
        "table4" => table4::run(&options).render(),
        "ablation" => ablation::run(&options).render(),
        "repair" => repair_study::run(&options).render(),
        "topologies" => topologies::run(&options).render(),
        other => {
            eprintln!("unknown experiment {other:?}");
            return usage();
        }
    };
    println!("{rendered}");
    ExitCode::SUCCESS
}

/// Socket reader: pulls bytes off one connection, decodes frames, and
/// feeds the ring. Leaves and server faults use the blocking push (they
/// must never shed); joins and moves shed under pressure, counted on
/// the ring. Closes the ring when the producer hangs up or framing is
/// lost, so the consumer loop drains and stops.
fn read_connection(mut conn: impl Read, ring: &IngestRing) {
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => {
                eprintln!("serve: read error: {e}");
                break;
            }
        };
        frames.feed(&buf[..n]);
        loop {
            match frames.next_event() {
                Ok(Some(event)) => {
                    let must_deliver = matches!(
                        event,
                        WorldEvent::Leave { .. }
                            | WorldEvent::ServerDown { .. }
                            | WorldEvent::ServerUp { .. }
                    );
                    let refused = if must_deliver {
                        ring.push_blocking(event).is_err()
                    } else {
                        ring.push_or_shed(event).is_err()
                    };
                    if refused {
                        // Only a closed ring refuses here: shut down.
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("serve: wire error: {e}; dropping connection");
                    return;
                }
            }
        }
    }
    if frames.pending_bytes() > 0 {
        eprintln!(
            "serve: connection closed mid-frame ({} bytes pending)",
            frames.pending_bytes()
        );
    }
}

fn cmd_serve(positional: &[String], flags: &HashMap<String, String>) -> ExitCode {
    let Some(notation) = positional.first() else {
        return usage();
    };
    let mut scenario = match ScenarioConfig::from_notation(notation) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    scenario.correlation = flag_parse(flags, "correlation", scenario.correlation);
    let setup = SimSetup {
        scenario,
        topology: TopologySpec::Hierarchical(HierarchicalConfig::default()),
        delay_bound_ms: flag_parse(flags, "delay-bound", 250.0),
        error_factor: flag_parse(flags, "error", 1.0),
        base_seed: flag_parse(flags, "seed", 42),
        runs: 1,
        ..Default::default()
    };
    let port: u16 = flag_parse(flags, "port", 0);
    let ring_slots: usize = flag_parse(flags, "ring", 4_096);
    let bound: usize = flag_parse(flags, "bound", 1_024);
    // Flag names and defaults mirror `IngestConfig` — the one source of
    // truth for the flush policy (`--max-batch` also sizes the engine's
    // own micro-batch so the two layers flush in step).
    let ingest_defaults = IngestConfig::default();
    let max_batch: usize = flag_parse(flags, "max-batch", ingest_defaults.max_batch);
    let staleness_ms: f64 = flag_parse(
        flags,
        "max-staleness-ms",
        ingest_defaults.max_staleness.as_secs_f64() * 1e3,
    );
    let shards: usize = flag_parse(flags, "shards", 1);
    if shards == 0 {
        eprintln!("serve: --shards must be >= 1");
        return ExitCode::from(2);
    }
    let connections: usize = flag_parse(flags, "connections", 1);
    if connections == 0 {
        eprintln!("serve: --connections must be >= 1");
        return ExitCode::from(2);
    }

    let rep = build_replication(&setup, 0);
    let world = rep.world;
    let serve_config = ServeConfig {
        max_batch,
        ..Default::default()
    };
    // One of the two engine shapes, behind the shared ServeSink trait:
    // the plain engine, or the zone-sharded engine on its worker team
    // (bit-identical decisions; shard books in the session summary).
    enum Booted {
        Plain(ServeEngine),
        Sharded(ShardedServeEngine),
    }
    let booted = if shards > 1 {
        ShardedServeEngine::new(
            rep.instance,
            &world,
            rep.delays,
            ErrorModel::PERFECT,
            StuckPolicy::BestEffort,
            serve_config,
            rep.rng,
            shards,
        )
        .map(Booted::Sharded)
    } else {
        ServeEngine::new(
            rep.instance,
            &world,
            rep.delays,
            ErrorModel::PERFECT,
            StuckPolicy::BestEffort,
            serve_config,
            rep.rng,
        )
        .map(Booted::Plain)
    };
    let mut booted = match booted {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("serve: cannot boot the engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("serve: listening on {addr} ({notation})"),
        Err(e) => eprintln!("serve: local_addr: {e}"),
    }

    // The reader thread owns the listener and serves `connections`
    // producers back to back against the one ring; the engine-side pull
    // loop below never sees the connection boundaries. The ring closes
    // only after the last producer hangs up.
    let ring = Arc::new(IngestRing::with_capacity(ring_slots));
    let reader_ring = Arc::clone(&ring);
    let reader = std::thread::spawn(move || {
        for n in 1..=connections {
            let (conn, peer) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    break;
                }
            };
            println!("serve: client {n}/{connections} connected from {peer}");
            read_connection(conn, &reader_ring);
            println!("serve: client {n}/{connections} disconnected");
        }
        reader_ring.close();
    });

    let ingest_config = IngestConfig {
        max_batch,
        max_staleness: Duration::from_secs_f64(staleness_ms / 1_000.0),
    };
    let report = match &mut booted {
        Booted::Plain(engine) => run_ingest_stream(engine, &ring, &world, bound, ingest_config),
        Booted::Sharded(engine) => run_ingest_stream(engine, &ring, &world, bound, ingest_config),
    };
    if reader.join().is_err() {
        eprintln!("serve: reader thread panicked");
    }

    let engine: &ServeEngine = match &booted {
        Booted::Plain(engine) => engine,
        Booted::Sharded(engine) => engine.engine(),
    };
    let stats = engine.stats();
    println!("serve: connection closed; session summary");
    println!(
        "  arrivals {}  committed {}  flushes {}  dropped {}  server events {}",
        report.arrivals, report.committed, report.flushes, report.dropped, report.server_events
    );
    println!(
        "  shed: ring {} + buffer {} (leaves shed: {})  coalesced {}  ineffective {}",
        ring.shed_events(),
        report.shed,
        report.shed_leaves,
        report.coalesced,
        report.ineffective
    );
    println!(
        "  arrival-to-commit: mean {:.3} ms  p99 {:.3} ms  p99.9 {:.3} ms ({} samples)",
        stats.latency.mean_ns() / 1e6,
        stats.latency.quantile_upper_ns(0.99) as f64 / 1e6,
        stats.latency.quantile_upper_ns(0.999) as f64 / 1e6,
        stats.latency.count()
    );
    println!(
        "  population {}  pQoS {:.3}  feasible {}",
        engine.num_clients(),
        engine.metrics().pqos,
        engine.is_feasible()
    );
    if let Booted::Sharded(sharded) = &booted {
        let (ev_max, ev_min) = sharded.event_imbalance();
        println!(
            "  shards: {}  event imbalance max {ev_max} / min {ev_min}",
            sharded.shards()
        );
        for (shard, book) in sharded.shard_stats().iter().enumerate() {
            println!(
                "    shard {shard}: {} events  flush propose p99 {:.3} ms ({} samples)",
                book.events,
                book.flush.quantile_upper_ns(0.99) as f64 / 1e6,
                book.flush.count()
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((positional, flags)) = parse(&args) else {
        return usage();
    };
    let Some(command) = positional.first() else {
        return usage();
    };
    let rest = &positional[1..];
    match command.as_str() {
        "topology" => cmd_topology(&flags),
        "solve" => cmd_solve(rest, &flags),
        "bounds" => cmd_bounds(rest, &flags),
        "experiment" => cmd_experiment(rest, &flags),
        "serve" => cmd_serve(rest, &flags),
        _ => usage(),
    }
}
