//! # dve — client-to-server assignment for distributed virtual environments
//!
//! A full Rust reproduction of *"Efficient Client-to-Server Assignments
//! for Distributed Virtual Environments"* (Ta & Zhou, IPDPS 2006),
//! including every substrate the paper's evaluation depends on. This
//! facade crate re-exports the workspace:
//!
//! * [`topology`] — BRITE-style Internet topologies, delay matrices;
//! * [`world`] — DVE scenarios, client placement, bandwidth model;
//! * [`milp`] — simplex + branch-and-bound (the lp_solve replacement);
//! * [`assign`] — the paper's contribution: the CAP and its algorithms;
//! * [`sim`] — replicated experiments and per-table/figure regenerators;
//! * [`par`] — the small parallel runtime used by the harness.
//!
//! ## Quickstart
//!
//! ```
//! use dve::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. An Internet-like topology (scaled-down BRITE hierarchy).
//! let mut rng = StdRng::seed_from_u64(7);
//! let topo_config = HierarchicalConfig { as_count: 5, routers_per_as: 10, ..Default::default() };
//! let topo = hierarchical(&topo_config, &mut rng);
//! let delays = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
//!
//! // 2. A DVE scenario: 5 servers, 15 zones, 200 clients, 100 Mbps.
//! let scenario = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
//! let world = World::generate(&scenario, topo.node_count(), &topo.as_of_node, &mut rng).unwrap();
//!
//! // 3. Solve the client assignment problem with the paper's best
//! //    heuristic and evaluate interactivity.
//! let inst = CapInstance::build(&world, &delays, 0.5, 250.0, ErrorModel::PERFECT, &mut rng);
//! let assignment = solve(&inst, CapAlgorithm::GreZGreC, StuckPolicy::Strict, &mut rng).unwrap();
//! let metrics = evaluate(&inst, &assignment);
//! assert!(metrics.pqos > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dve_assign as assign;
pub use dve_milp as milp;
pub use dve_par as par;
pub use dve_sim as sim;
pub use dve_topology as topology;
pub use dve_world as world;

/// One-stop imports for the common pipeline (topology → world → instance
/// → solve → evaluate).
pub mod prelude {
    pub use dve_assign::{
        evaluate, grec, grez, ranz, solve, virc, Assignment, BbConfig, CapAlgorithm, CapInstance,
        CostMatrix, DelayLayout, IncrementalEval, Metrics, StuckPolicy,
    };
    pub use dve_sim::{run_experiment, DelayMode, SimSetup, TopologySpec};
    pub use dve_topology::{
        hierarchical, us_backbone, DelayMatrix, DelaySource, HierarchicalConfig, OnDemandDelays,
        Topology,
    };
    pub use dve_world::{
        BandwidthModel, DistributionType, ErrorModel, ScenarioConfig, World, WorldDelays,
    };
}
