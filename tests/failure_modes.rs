//! Failure-injection integration tests: every layer must fail loudly and
//! predictably on degenerate inputs rather than producing garbage.

use dve::assign::{
    exact_iap, grez, ranz, solve, BbConfig, CapAlgorithm, CapInstance, IapError, StuckPolicy,
};
use dve::milp::{solve_lp, Constraint, GapInstance, GapOutcome, LinearProgram, LpOutcome};
use dve::prelude::*;
use dve::topology::{DelayError, Graph};
use dve::world::WorldError;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn disconnected_topology_is_rejected_by_delay_matrix() {
    let g = Graph::with_nodes(5); // no edges at all
    match DelayMatrix::from_graph(&g, 500.0) {
        Err(DelayError::Disconnected) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
}

#[test]
fn scenario_larger_than_topology_is_rejected() {
    let mut rng = StdRng::seed_from_u64(1);
    let scenario = ScenarioConfig::default(); // 20 servers
    let labels = vec![0u16; 10];
    match World::generate(&scenario, 10, &labels, &mut rng) {
        Err(WorldError::NotEnoughNodes {
            nodes: 10,
            servers: 20,
        }) => {}
        other => panic!("expected NotEnoughNodes, got {other:?}"),
    }
}

#[test]
fn invalid_scenarios_are_rejected_before_generation() {
    let mut bad = ScenarioConfig::default();
    bad.correlation = 2.0;
    assert!(bad.validate().is_err());
    let mut rng = StdRng::seed_from_u64(2);
    let labels = vec![0u16; 500];
    assert!(matches!(
        World::generate(&bad, 500, &labels, &mut rng),
        Err(WorldError::BadConfig(_))
    ));
}

#[test]
fn overloaded_instance_strict_vs_best_effort() {
    // One server, one zone whose load exceeds capacity.
    let inst = CapInstance::from_raw(
        1,
        1,
        vec![0, 0, 0],
        vec![100.0, 100.0, 100.0],
        vec![0.0],
        vec![600.0; 3],
        vec![1000.0],
        250.0,
    );
    let mut rng = StdRng::seed_from_u64(3);
    assert!(matches!(
        grez(&inst, StuckPolicy::Strict),
        Err(IapError::NoFeasibleServer { zone: 0 })
    ));
    assert!(matches!(
        ranz(&inst, StuckPolicy::Strict, &mut rng),
        Err(IapError::NoFeasibleServer { zone: 0 })
    ));
    assert!(matches!(
        exact_iap(&inst, &BbConfig::default()),
        Err(IapError::Infeasible)
    ));
    // Best effort completes, flags the overflow via validation.
    let a = solve(
        &inst,
        CapAlgorithm::GreZGreC,
        StuckPolicy::BestEffort,
        &mut rng,
    )
    .unwrap();
    assert!(!a.is_feasible(&inst));
    assert!(!a.validate(&inst).is_empty());
}

#[test]
fn lp_solver_rejects_malformed_models() {
    // Reference to a variable outside the objective's arity.
    let mut lp = LinearProgram::new(1);
    lp.add_constraint(Constraint::le(vec![(3, 1.0)], 1.0));
    assert!(solve_lp(&lp).is_err());

    // NaN coefficient.
    let mut lp = LinearProgram::new(1);
    lp.add_constraint(Constraint::le(vec![(0, f64::NAN)], 1.0));
    assert!(solve_lp(&lp).is_err());
}

#[test]
fn lp_solver_classifies_unbounded_and_infeasible() {
    let mut unbounded = LinearProgram::new(1);
    unbounded.set_objective(0, -1.0);
    unbounded.add_constraint(Constraint::ge(vec![(0, 1.0)], 0.0));
    assert_eq!(solve_lp(&unbounded).unwrap(), LpOutcome::Unbounded);

    let mut infeasible = LinearProgram::new(1);
    infeasible.add_constraint(Constraint::ge(vec![(0, 1.0)], 2.0));
    infeasible.add_constraint(Constraint::le(vec![(0, 1.0)], 1.0));
    assert_eq!(solve_lp(&infeasible).unwrap(), LpOutcome::Infeasible);
}

#[test]
fn gap_with_zero_capacity_only_accepts_zero_demand() {
    let inst = GapInstance {
        cost: vec![vec![1.0, 2.0]],
        demand: vec![vec![0.0, 1.0]],
        capacity: vec![0.0],
    };
    // Task 0 has zero demand -> assignable; task 1 cannot fit anywhere.
    assert_eq!(
        inst.solve_exact(&BbConfig::default()).unwrap(),
        GapOutcome::Infeasible
    );
}

#[test]
fn zero_client_world_works_end_to_end() {
    let mut rng = StdRng::seed_from_u64(4);
    let topo = hierarchical(
        &HierarchicalConfig {
            as_count: 3,
            routers_per_as: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let delays = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
    let scenario = ScenarioConfig::from_notation("3s-6z-0c-50cp").unwrap();
    let world = World::generate(&scenario, 15, &topo.as_of_node, &mut rng).unwrap();
    let inst = CapInstance::build(&world, &delays, 0.5, 250.0, ErrorModel::PERFECT, &mut rng);
    for algo in CapAlgorithm::HEURISTICS {
        let a = solve(&inst, algo, StuckPolicy::Strict, &mut rng).unwrap();
        let m = evaluate(&inst, &a);
        assert_eq!(m.pqos, 1.0, "{algo}: vacuous QoS");
        assert_eq!(m.utilization, 0.0, "{algo}: nothing consumed");
    }
}

#[test]
fn single_server_world_degenerates_gracefully() {
    let mut rng = StdRng::seed_from_u64(5);
    let topo = hierarchical(
        &HierarchicalConfig {
            as_count: 3,
            routers_per_as: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let delays = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
    let scenario = ScenarioConfig::from_notation("1s-4z-40c-100cp").unwrap();
    let world = World::generate(&scenario, 15, &topo.as_of_node, &mut rng).unwrap();
    let inst = CapInstance::build(&world, &delays, 0.5, 250.0, ErrorModel::PERFECT, &mut rng);
    for algo in CapAlgorithm::HEURISTICS {
        let a = solve(&inst, algo, StuckPolicy::BestEffort, &mut rng).unwrap();
        // Everything must land on the only server.
        assert!(a.target_of_zone.iter().all(|&s| s == 0), "{algo}");
        assert!(a.contact_of_client.iter().all(|&s| s == 0), "{algo}");
    }
}

#[test]
fn bad_delay_matrix_parameters_are_rejected() {
    let mut g = Graph::with_nodes(2);
    g.add_edge(0, 1, 1.0).unwrap();
    assert!(matches!(
        DelayMatrix::from_graph(&g, -1.0),
        Err(DelayError::BadMaxRtt(_))
    ));
    assert!(matches!(
        DelayMatrix::from_graph(&Graph::with_nodes(1), 500.0),
        Err(DelayError::TooSmall(1))
    ));
}
