//! Cross-crate integration test of the ingest front end: a TCP
//! loopback producer speaking the `dve_world::wire` protocol, a socket
//! reader feeding the SPSC ring, and the engine-side pull loop
//! committing the events — the full `dvecap serve` path, in-process.

use dve::assign::StuckPolicy;
use dve::sim::{
    build_replication, run_ingest_stream, IngestConfig, ServeConfig, ServeEngine, SimSetup,
    TopologySpec,
};
use dve::topology::HierarchicalConfig;
use dve::world::wire::{encode_event, FrameReader};
use dve::world::{ErrorModel, IngestRing, ScenarioConfig, WorldEvent};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn small_setup() -> SimSetup {
    SimSetup {
        scenario: ScenarioConfig::from_notation("5s-15z-120c-100cp").unwrap(),
        topology: TopologySpec::Hierarchical(HierarchicalConfig {
            as_count: 5,
            routers_per_as: 8,
            ..Default::default()
        }),
        runs: 1,
        ..Default::default()
    }
}

/// The socket-reader half of `dvecap serve`: bytes → frames → ring.
fn read_into_ring(mut conn: TcpStream, ring: &IngestRing) {
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = match conn.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        frames.feed(&buf[..n]);
        while let Some(event) = frames.next_event().expect("well-formed stream") {
            let must_deliver = matches!(
                event,
                WorldEvent::Leave { .. }
                    | WorldEvent::ServerDown { .. }
                    | WorldEvent::ServerUp { .. }
            );
            if must_deliver {
                ring.push_blocking(event).unwrap();
            } else {
                ring.push_or_shed(event).unwrap();
            }
        }
    }
    assert_eq!(frames.pending_bytes(), 0, "no truncated final frame");
}

/// End to end over a real socket: a producer thread encodes a churn
/// script frame by frame, the reader decodes into the ring, the pull
/// loop commits into the engine. Population, shed counters, and
/// latency sample counts all reconcile.
#[test]
fn wire_events_over_loopback_commit_into_the_engine() {
    let setup = small_setup();
    let rep = build_replication(&setup, 0);
    let world = rep.world;
    let mut engine = ServeEngine::new(
        rep.instance,
        &world,
        rep.delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        rep.rng,
    )
    .expect("small instances solve");

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // The producer: a churn script against the initial population's
    // stable ids, written in a handful of odd-sized chunks so framing
    // is exercised across write boundaries.
    let script: Vec<WorldEvent> = vec![
        WorldEvent::Move { client: 0, zone: 3 },
        WorldEvent::Leave { client: 1 },
        WorldEvent::Join { node: 2, zone: 5 },
        WorldEvent::Move { client: 0, zone: 4 },
        WorldEvent::Move { client: 2, zone: 9 },
        WorldEvent::Leave { client: 3 },
        WorldEvent::Join { node: 7, zone: 1 },
    ];
    let script_clone = script.clone();
    let producer = std::thread::spawn(move || {
        let mut bytes = Vec::new();
        for ev in &script_clone {
            encode_event(ev, &mut bytes);
        }
        let mut conn = TcpStream::connect(addr).unwrap();
        // Deliberately misaligned chunks: 7 bytes at a time.
        for chunk in bytes.chunks(7) {
            conn.write_all(chunk).unwrap();
        }
    });

    let (conn, _) = listener.accept().unwrap();
    let ring = Arc::new(IngestRing::with_capacity(64));
    let reader_ring = Arc::clone(&ring);
    let reader = std::thread::spawn(move || {
        read_into_ring(conn, &reader_ring);
        reader_ring.close();
    });

    let report = run_ingest_stream(&mut engine, &ring, &world, 256, IngestConfig::default());
    producer.join().unwrap();
    reader.join().unwrap();

    assert_eq!(report.arrivals, script.len() as u64);
    assert_eq!(report.shed_leaves, 0);
    assert_eq!(report.dropped, 0);
    assert_eq!(ring.shed_events(), 0);
    // 2 leaves + 2 joins; moves commit unless they were no-ops (the
    // coalesced final destination equals the base zone).
    let moved0 = u64::from(world.clients[0].zone != 4);
    let moved2 = u64::from(world.clients[2].zone != 9);
    assert_eq!(report.committed, 4 + moved0 + moved2);
    assert_eq!(report.coalesced, 1, "the second move of client 0");
    assert_eq!(engine.num_clients(), 120, "2 leaves + 2 joins net zero");
    assert_eq!(
        engine.stats().latency.count() + engine.stats().warmup.count(),
        report.committed - report.server_events,
        "one latency sample per committed churn event"
    );
    // Departed ids are gone; the joiners took the next ids.
    assert_eq!(engine.index_of(1), None);
    assert_eq!(engine.index_of(3), None);
    assert!(engine.index_of(120).is_some(), "first joiner's id");
    assert!(engine.index_of(121).is_some(), "second joiner's id");
}

/// The `--connections N` shape of `dvecap serve`: two producers connect
/// back to back, the reader accepts them sequentially against the same
/// ring, and one serve loop commits both scripts into one engine. The
/// second client observes state the first one created (the first
/// joiner's id is live; a departed id is gone).
#[test]
fn two_sequential_clients_share_one_serve_loop() {
    let setup = small_setup();
    let rep = build_replication(&setup, 0);
    let world = rep.world;
    let mut engine = ServeEngine::new(
        rep.instance,
        &world,
        rep.delays,
        ErrorModel::PERFECT,
        StuckPolicy::BestEffort,
        ServeConfig::default(),
        rep.rng,
    )
    .expect("small instances solve");

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Client 1 churns the initial population and joins one client
    // (which takes id 120); client 2 connects after client 1 hangs up
    // and addresses both the initial ids and that joiner.
    let script_one: Vec<WorldEvent> = vec![
        WorldEvent::Move { client: 0, zone: 3 },
        WorldEvent::Leave { client: 1 },
        WorldEvent::Join { node: 2, zone: 5 },
    ];
    let script_two: Vec<WorldEvent> = vec![
        WorldEvent::Move {
            client: 120,
            zone: 7,
        },
        WorldEvent::Leave { client: 2 },
        WorldEvent::Join { node: 4, zone: 9 },
    ];
    let total_events = script_one.len() + script_two.len();
    let producer = std::thread::spawn(move || {
        for script in [&script_one, &script_two] {
            let mut bytes = Vec::new();
            for ev in script {
                encode_event(ev, &mut bytes);
            }
            let mut conn = TcpStream::connect(addr).unwrap();
            for chunk in bytes.chunks(5) {
                conn.write_all(chunk).unwrap();
            }
            // Dropping `conn` closes it; the next iteration dials a
            // fresh connection that the reader accepts afterwards.
        }
    });

    // The reader half of `dvecap serve --connections 2`: sequential
    // accepts into the same ring, closed after the last hang-up.
    let ring = Arc::new(IngestRing::with_capacity(64));
    let reader_ring = Arc::clone(&ring);
    let reader = std::thread::spawn(move || {
        for _ in 0..2 {
            let (conn, _) = listener.accept().unwrap();
            read_into_ring(conn, &reader_ring);
        }
        reader_ring.close();
    });

    // max_batch = 3 pins a flush right after each client's script, so
    // client 1's joiner id is live before client 2 addresses it no
    // matter how the pump interleaves with the socket reads.
    let config = IngestConfig {
        max_batch: 3,
        ..Default::default()
    };
    let report = run_ingest_stream(&mut engine, &ring, &world, 256, config);
    producer.join().unwrap();
    reader.join().unwrap();

    assert_eq!(report.arrivals, total_events as u64);
    assert_eq!(report.shed_leaves, 0);
    assert_eq!(report.dropped, 0);
    assert_eq!(ring.shed_events(), 0);
    assert_eq!(engine.num_clients(), 120, "2 leaves + 2 joins net zero");
    // Cross-connection state: ids departed or created by client 1 are
    // what client 2 saw; client 2's join took the next fresh id.
    assert_eq!(engine.index_of(1), None, "client 1's leave");
    assert_eq!(engine.index_of(2), None, "client 2's leave");
    assert!(engine.index_of(120).is_some(), "client 1's joiner");
    assert!(engine.index_of(121).is_some(), "client 2's joiner");
}

/// A malformed stream (hostile length prefix) is refused at the frame
/// layer without crashing anything downstream.
#[test]
fn hostile_length_prefix_drops_the_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let producer = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&u32::MAX.to_le_bytes()).unwrap();
        conn.write_all(&[0u8; 64]).unwrap();
    });
    let (mut conn, _) = listener.accept().unwrap();
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 256];
    let mut refused = false;
    loop {
        let n = match conn.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        frames.feed(&buf[..n]);
        match frames.next_event() {
            Ok(Some(_)) => panic!("garbage must not decode"),
            Ok(None) => {}
            Err(_) => {
                refused = true;
                break;
            }
        }
    }
    producer.join().unwrap();
    assert!(refused, "the oversized frame must be refused");
}
