//! Cross-crate integration tests: the full pipeline from topology
//! generation through assignment to evaluation, exercised end to end.

use dve::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_pipeline(seed: u64) -> (CapInstance, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo_config = HierarchicalConfig {
        as_count: 5,
        routers_per_as: 10,
        ..Default::default()
    };
    let topo = hierarchical(&topo_config, &mut rng);
    let delays = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
    let scenario = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
    let world = World::generate(&scenario, topo.node_count(), &topo.as_of_node, &mut rng).unwrap();
    let inst = CapInstance::build(&world, &delays, 0.5, 250.0, ErrorModel::PERFECT, &mut rng);
    (inst, rng)
}

#[test]
fn full_pipeline_runs_all_algorithms() {
    let (inst, mut rng) = small_pipeline(1);
    for algo in CapAlgorithm::HEURISTICS {
        let a = solve(&inst, algo, StuckPolicy::Strict, &mut rng).unwrap();
        let m = evaluate(&inst, &a);
        assert!(a.is_feasible(&inst), "{algo}");
        assert!((0.0..=1.0).contains(&m.pqos), "{algo}");
        assert_eq!(m.delays.len(), 200);
    }
}

#[test]
fn paper_ordering_holds_on_average() {
    // The paper's Table 1 ordering: GreZ-GreC >= GreZ-VirC >= RanZ-GreC
    // >= RanZ-VirC in pQoS (the middle pair can be close; check the
    // endpoints strictly and the monotone trend loosely over 8 seeds).
    let mut sums = [0.0f64; 4];
    let runs = 8;
    for seed in 0..runs {
        let (inst, mut rng) = small_pipeline(seed);
        for (k, algo) in CapAlgorithm::HEURISTICS.into_iter().enumerate() {
            let a = solve(&inst, algo, StuckPolicy::Strict, &mut rng).unwrap();
            sums[k] += evaluate(&inst, &a).pqos;
        }
    }
    let [ranz_virc, ranz_grec, grez_virc, grez_grec] = sums.map(|s| s / runs as f64);
    assert!(
        grez_grec > ranz_virc + 0.05,
        "GreZ-GreC {grez_grec} should clearly beat RanZ-VirC {ranz_virc}"
    );
    assert!(grez_grec >= grez_virc - 1e-9, "refinement never hurts");
    assert!(ranz_grec >= ranz_virc - 1e-9, "refinement never hurts");
    assert!(
        grez_virc > ranz_virc,
        "delay-aware initial assignment must beat random"
    );
}

#[test]
fn grec_refinement_never_decreases_pqos_vs_virc() {
    // For the same IAP targets, GreC can only reroute clients whose
    // observed delay violates the bound — with perfect observations, the
    // rescued set can only grow.
    for seed in 0..5 {
        let (inst, _) = small_pipeline(seed);
        let targets = grez(&inst, StuckPolicy::Strict).unwrap();
        let virc_contacts = virc(&inst, &targets);
        let grec_contacts = grec(&inst, &targets);
        let a_virc = Assignment {
            target_of_zone: targets.clone(),
            contact_of_client: virc_contacts,
        };
        let a_grec = Assignment {
            target_of_zone: targets,
            contact_of_client: grec_contacts,
        };
        let p_virc = evaluate(&inst, &a_virc).pqos;
        let p_grec = evaluate(&inst, &a_grec).pqos;
        assert!(
            p_grec >= p_virc - 1e-9,
            "seed {seed}: GreC {p_grec} vs VirC {p_virc}"
        );
    }
}

#[test]
fn determinism_across_identical_seeds() {
    let (inst_a, mut rng_a) = small_pipeline(99);
    let (inst_b, mut rng_b) = small_pipeline(99);
    for algo in [CapAlgorithm::RanZVirC, CapAlgorithm::GreZGreC] {
        let a = solve(&inst_a, algo, StuckPolicy::Strict, &mut rng_a).unwrap();
        let b = solve(&inst_b, algo, StuckPolicy::Strict, &mut rng_b).unwrap();
        assert_eq!(a.target_of_zone, b.target_of_zone, "{algo}");
        assert_eq!(a.contact_of_client, b.contact_of_client, "{algo}");
    }
}

#[test]
fn exact_solver_beats_heuristics_on_iap_cost() {
    use dve::assign::{exact_iap, iap_total_cost, BbConfig};
    let (inst, _) = small_pipeline(3);
    let exact = exact_iap(&inst, &BbConfig::default()).unwrap();
    let greedy = grez(&inst, StuckPolicy::Strict).unwrap();
    assert!(iap_total_cost(&inst, &exact) <= iap_total_cost(&inst, &greedy) + 1e-9);
}

#[test]
fn error_model_degrades_but_does_not_break() {
    let mut rng = StdRng::seed_from_u64(5);
    let topo = hierarchical(
        &HierarchicalConfig {
            as_count: 5,
            routers_per_as: 10,
            ..Default::default()
        },
        &mut rng,
    );
    let delays = DelayMatrix::from_graph(&topo.graph, 500.0).unwrap();
    let scenario = ScenarioConfig::from_notation("5s-15z-200c-100cp").unwrap();
    let world = World::generate(&scenario, topo.node_count(), &topo.as_of_node, &mut rng).unwrap();
    let noisy = CapInstance::build(&world, &delays, 0.5, 250.0, ErrorModel::IDMAPS, &mut rng);
    let a = solve(
        &noisy,
        CapAlgorithm::GreZGreC,
        StuckPolicy::Strict,
        &mut rng,
    )
    .unwrap();
    let m = evaluate(&noisy, &a);
    assert!(m.pqos > 0.3, "even with e=2 the greedy should do something");
    assert!(a.is_feasible(&noisy));
}

#[test]
fn backbone_pipeline_works() {
    let mut rng = StdRng::seed_from_u64(6);
    let topo = us_backbone();
    let delays = DelayMatrix::from_graph(&topo.graph, 120.0).unwrap();
    let scenario = ScenarioConfig::from_notation("4s-12z-150c-100cp").unwrap();
    let world = World::generate(&scenario, topo.node_count(), &topo.as_of_node, &mut rng).unwrap();
    let inst = CapInstance::build(&world, &delays, 0.5, 60.0, ErrorModel::PERFECT, &mut rng);
    let a = solve(
        &inst,
        CapAlgorithm::GreZGreC,
        StuckPolicy::BestEffort,
        &mut rng,
    )
    .unwrap();
    let m = evaluate(&inst, &a);
    assert!((0.0..=1.0).contains(&m.pqos));
}
