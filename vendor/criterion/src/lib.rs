//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Implements the measurement surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`](struct@BenchmarkGroup),
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple but
//! honest timing loop: per sample, the measured closure is batched until
//! the batch runs long enough for the monotonic clock to resolve it, and
//! the reported statistics (median, min, max over samples) come from
//! wall-clock time. No plotting, no HTML report, no statistical
//! regression testing. See `vendor/README.md` for why external crates
//! are vendored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Respect the filter argument `cargo bench -- <filter>` passes;
        // ignore harness flags such as `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            filter,
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are read in `default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id.full_name(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            sample_size,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Upstream-compatible knob; the vendored harness keeps its fixed
    /// per-sample budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream finalises the report here; the vendored
    /// harness reports eagerly).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.name, p),
            (false, None) => self.name.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, batching calls per sample so short closures are
    /// resolvable by the monotonic clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and pick a batch size aiming at ~budget/sample_size per
        // sample.
        let started = Instant::now();
        black_box(f());
        let once = started.elapsed().max(Duration::from_nanos(50));
        let per_sample = self.budget.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / once.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{name:<56} time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declares a group of benchmark functions, mirroring upstream
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(10),
            filter: None,
        };
        let mut hits = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("alg", 42).full_name(), "alg/42");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }
}
