//! Offline, API-compatible subset of the `crossbeam` 0.8 crate.
//!
//! Provides the two pieces this workspace uses: [`scope`] (scoped threads
//! with handles, implemented over `std::thread::scope`) and
//! [`channel::unbounded`] (a clonable MPMC channel). See
//! `vendor/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

use std::any::Any;

/// Error payload of a panicked scoped thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle for spawning borrowing threads, mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread, joinable before the scope ends.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope. The
    /// closure receives the scope again so spawned threads can spawn.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// threads are joined before this returns. Panics from unjoined threads
/// propagate (the upstream crate reports them through `Err` instead; all
/// call sites `expect` the result, so the observable behaviour matches).
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when every receiver is gone (not observable with
    /// this subset's clonable receivers still alive; kept for API parity).
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // disconnection. The notification must be ordered against
                // recv()'s empty-then-check-senders window by taking the
                // queue mutex first — notifying without it can fire while
                // a receiver still holds the lock between its senders
                // check and its wait(), losing the wakeup and hanging the
                // receiver forever.
                let guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.ready.notify_all();
                drop(guard);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive, `None` when empty.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3];
        let total = AtomicUsize::new(0);
        let out = super::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(x as usize, Ordering::Relaxed);
                        x * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(out, 60);
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn channel_delivers_across_threads() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let rx2 = rx.clone();
        let consumed = std::thread::spawn(move || {
            let mut got = 0;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let direct = std::iter::from_fn(|| rx.try_recv()).count();
        assert_eq!(consumed.join().unwrap() + direct, 100);
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }
}
