//! Offline, API-compatible subset of the `parking_lot` 0.12 crate:
//! poison-free [`Mutex`] and [`Condvar`] over the std primitives. See
//! `vendor/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` never returns a poison error (a panicked holder
/// simply passes the data on, like upstream parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // `Option` so Condvar::wait can take and restore the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<'a, T> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`, like
/// upstream parking_lot.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// re-acquires before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
