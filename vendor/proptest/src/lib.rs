//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, `any::<T>()`, integer/float range strategies,
//! [`collection::vec`], and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed; there is no shrinking —
//! failures report the case index so a run can be reproduced by name.
//! See `vendor/README.md` for why external crates are vendored.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic case generator handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Seeds the runner from a test-name hash so every property has an
    /// independent, reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRunner;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
    }

    /// Types with a full-domain default strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value over the whole domain.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.rng().gen::<$t>()
                }
            }
        )*};
    }

    arbitrary_via_gen!(u32, u64, i64, usize, bool, f64);

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The full-domain strategy of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A fixed value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRunner;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 0..500)` — a vector of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                runner.rng().gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config($config:expr)) => {};
    (@config($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut runner);)+
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name), case, config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec(any::<u32>(), 2usize..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_used(seed in any::<u64>()) {
            prop_assert_eq!(seed, seed);
            prop_assert_ne!(1, 2);
        }
    }
}
