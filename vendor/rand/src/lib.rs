//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! exact surface the workspace uses is vendored here: [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], [`rngs::mock::StepRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256**
//! seeded via SplitMix64 — deterministic across platforms, which is all
//! the seeded-replication harness requires (it never assumes the upstream
//! rand stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of the
/// upstream crate).
pub trait StandardSample {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // All arithmetic in two's-complement u128: `start + offset`
                // always lies in [start, end), so the truncating cast back
                // is exact even for signed ranges wider than the type's
                // positive half (e.g. -100i8..100).
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = rng.next_u64() as u128 % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let offset = if span == 0 {
                    // Only reachable for a full u128-width domain, which no
                    // supported type has; keep the arithmetic total anyway.
                    rng.next_u64() as u128
                } else {
                    rng.next_u64() as u128 % span
                };
                (lo as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Statistically strong and, unlike the upstream StdRng,
    /// guaranteed stable across releases of this vendored crate.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for deterministic tests.
    pub mod mock {
        use super::super::RngCore;

        /// Yields `initial`, `initial + increment`, ... — the upstream
        /// mock used where code needs *an* RNG but never real randomness.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            state: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a mock starting at `initial`, stepping by
            /// `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    state: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.state;
                self.state = self.state.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4u64);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn signed_ranges_wider_than_positive_half_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
            seen_neg |= x < 0;
            seen_pos |= x > 0;
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
            let z = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
        assert!(seen_neg && seen_pos, "both halves of the range reachable");
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(5, 2);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
