//! Offline stub of the `serde` facade: marker traits plus the no-op
//! derive macros from the vendored `serde_derive`. Nothing in this
//! workspace serialises through serde (JSON artefacts are written by
//! hand), so the traits carry no methods; deriving them keeps the source
//! compatible with the real serde stack. See `vendor/README.md`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stub for `serde::Serialize`.
pub trait Serialize {}

/// Marker stub for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
