//! Offline stub of the `serde_derive` proc macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on result structs for
//! forward compatibility, but nothing in-tree serialises through serde
//! (JSON artefacts are emitted by hand). The derives therefore expand to
//! nothing; swapping in the real serde stack later requires no source
//! changes. See `vendor/README.md`.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
